//! The simulated persistent memory pool and per-thread access handles.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use ido_metrics::{Counters, MetricsBuf, MetricsConfig, MetricsHandle, ServiceMetrics};
use ido_trace::{
    Category, CostBreakdown, EventKind, RecoveryPhase, Trace, TraceBuf, TraceConfig, TraceHandle,
};

use crate::journal::{Journal, PersistEvent, PersistEventKind};
use crate::latency::LatencyModel;
use crate::line::{line_of, lines_spanning, CACHE_LINE, WORDS_PER_LINE};
use crate::stats::{PersistStats, StatsSnapshot};
use crate::PAddr;

/// Decides which dirty lines survive a [`PmemPool::crash`].
///
/// On real hardware, a line that was stored to but never explicitly flushed
/// may still reach NVM if the cache evicted it before the failure. A correct
/// failure-atomicity scheme must therefore tolerate *any* subset of dirty
/// lines persisting. The policies below let tests explore that space.
#[derive(Debug, Clone, PartialEq, Eq)]
#[derive(Default)]
pub enum CrashPolicy {
    /// No un-fenced dirty line survives (the cache never evicted anything).
    #[default]
    DropDirty,
    /// Every dirty line survives (the cache evicted everything just in time).
    EvictAll,
    /// Each dirty line independently survives with probability
    /// `persist_permille / 1000`, drawn from the seed passed to `crash`.
    Random {
        /// Per-line survival probability in permille (0–1000).
        persist_permille: u16,
    },
    /// Loses exactly the chosen set of dirty lines; every other dirty line
    /// survives (is evicted in time). This is the crash oracle's workhorse:
    /// it makes the "which unflushed lines reach NVM" outcome an explicit,
    /// enumerable input instead of a random draw. `Subset` with an empty
    /// set behaves like [`CrashPolicy::EvictAll`]; with the full dirty set,
    /// like [`CrashPolicy::DropDirty`].
    Subset {
        /// Line indices whose un-fenced contents are lost at the crash.
        /// Dirty lines *not* in this set survive. Shared so that cloning a
        /// policy (configs are cloned per VM run) stays cheap.
        lost: Arc<BTreeSet<usize>>,
    },
}

impl CrashPolicy {
    /// A [`CrashPolicy::Subset`] losing exactly `lost`.
    pub fn losing(lost: impl IntoIterator<Item = usize>) -> Self {
        CrashPolicy::Subset { lost: Arc::new(lost.into_iter().collect()) }
    }

    /// Short display name for reports and journal entries.
    pub fn name(&self) -> &'static str {
        match self {
            CrashPolicy::DropDirty => "drop-dirty",
            CrashPolicy::EvictAll => "evict-all",
            CrashPolicy::Random { .. } => "random",
            CrashPolicy::Subset { .. } => "subset",
        }
    }
}


/// Construction parameters for a [`PmemPool`].
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Pool size in bytes; rounded up to a multiple of the cache-line size.
    pub size: usize,
    /// Latency model used by every handle of this pool.
    pub latency: LatencyModel,
    /// What happens to dirty lines at crash time.
    pub crash_policy: CrashPolicy,
    /// Event tracing for handles of this pool. The default reads
    /// `IDO_TRACE` / `IDO_TRACE_BUF` from the environment, so every
    /// binary supports tracing without plumbing a flag.
    pub trace: TraceConfig,
    /// Windowed service metrics for handles of this pool (off by
    /// default; the service harnesses opt in explicitly).
    pub metrics: MetricsConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            size: 16 << 20, // 16 MiB
            latency: LatencyModel::default(),
            crash_policy: CrashPolicy::DropDirty,
            trace: TraceConfig::from_env(),
            metrics: MetricsConfig::default(),
        }
    }
}

impl PoolConfig {
    /// A small, zero-latency pool for unit tests (tracing off regardless
    /// of the environment, for determinism; tests opt in explicitly).
    pub fn small_for_tests() -> Self {
        Self {
            size: 1 << 20,
            latency: LatencyModel::zero(),
            crash_policy: CrashPolicy::DropDirty,
            trace: TraceConfig { enabled: false, ..TraceConfig::default() },
            metrics: MetricsConfig::default(),
        }
    }
}

struct Inner {
    /// The cache + DRAM view: what loads and stores observe pre-crash.
    volatile: Vec<AtomicU64>,
    /// The NVM view: what survives a crash.
    persistent: Vec<AtomicU64>,
    /// One bit per cache line: set if the volatile line differs from the
    /// persistent line by an un-written-back store.
    dirty: Vec<AtomicU64>,
    config: PoolConfig,
    crashes: AtomicU64,
    global_stats: PersistStats,
    journal: Journal,
    /// Tracing state. Enablement is sampled at handle creation, so
    /// [`PmemPool::set_trace`] affects only handles created afterwards —
    /// which is exactly what lets recovery drivers trace the post-crash
    /// segment alone.
    trace_enabled: AtomicBool,
    trace_buf_entries: AtomicUsize,
    trace_next_tid: AtomicU64,
    /// Rings folded from dropped handles, awaiting [`PmemPool::take_trace`].
    trace_bufs: Mutex<Vec<Box<TraceBuf>>>,
    /// Metrics state, sampled at handle creation exactly like tracing —
    /// [`PmemPool::set_metrics`] affects only handles created afterwards,
    /// which is what lets a crash-under-load harness lay pre-crash,
    /// recovery, and post-crash segments onto one global timeline via the
    /// base offset.
    metrics_enabled: AtomicBool,
    metrics_window_ns: AtomicU64,
    metrics_base_ns: AtomicU64,
    metrics_next_tid: AtomicU64,
    /// Buffers folded from dropped handles, awaiting
    /// [`PmemPool::take_metrics`].
    metrics_bufs: Mutex<Vec<Box<MetricsBuf>>>,
}

impl Inner {
    #[inline]
    fn is_dirty(&self, line: usize) -> bool {
        self.dirty[line / 64].load(Ordering::Relaxed) & (1 << (line % 64)) != 0
    }

    #[inline]
    fn set_dirty(&self, line: usize) {
        self.dirty[line / 64].fetch_or(1 << (line % 64), Ordering::Relaxed);
    }

    #[inline]
    fn clear_dirty(&self, line: usize) {
        self.dirty[line / 64].fetch_and(!(1u64 << (line % 64)), Ordering::Relaxed);
    }

    #[inline]
    fn writeback_line(&self, line: usize) {
        let base = line * WORDS_PER_LINE;
        for i in 0..WORDS_PER_LINE {
            let v = self.volatile[base + i].load(Ordering::Relaxed);
            self.persistent[base + i].store(v, Ordering::Relaxed);
        }
    }
}

/// A simulated pool of byte-addressable nonvolatile memory.
///
/// Cloning the pool is cheap (it is an `Arc` internally); every thread should
/// obtain its own [`PmemHandle`] via [`PmemPool::handle`] for access, since
/// handles carry thread-local simulated clocks and write-back queues.
#[derive(Clone)]
pub struct PmemPool {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for PmemPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemPool")
            .field("size", &self.size())
            .field("crashes", &self.inner.crashes.load(Ordering::Relaxed))
            .finish()
    }
}

/// Allocates `n` zeroed `AtomicU64`s without writing them.
///
/// `AtomicU64` is `repr(transparent)` over `u64` and all-zeros is a valid
/// value, so `alloc_zeroed` (which hands back untouched zero pages from the
/// OS) is a correct initializer. This makes pool construction O(1) in
/// memory touched instead of a multi-megabyte memset per VM — and the crash
/// oracle and the figure sweeps build a fresh VM per crash state / data
/// point, so construction cost is on their critical path.
fn zeroed_atomics(n: usize) -> Vec<AtomicU64> {
    use std::alloc::{alloc_zeroed, handle_alloc_error, Layout};
    if n == 0 {
        return Vec::new();
    }
    let layout = Layout::array::<AtomicU64>(n).expect("pool allocation fits a Layout");
    // SAFETY: the pointer comes from the global allocator with exactly the
    // layout `Vec`'s drop will deallocate with (len == capacity == n), and
    // the zero bit pattern is a valid `AtomicU64` for all n elements.
    unsafe {
        let ptr = alloc_zeroed(layout) as *mut AtomicU64;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, n, n)
    }
}

impl PmemPool {
    /// Creates a pool whose volatile and persistent images are zero-filled.
    pub fn new(config: PoolConfig) -> Self {
        let size = config.size.next_multiple_of(CACHE_LINE).max(CACHE_LINE);
        let words = size / 8;
        let lines = size / CACHE_LINE;
        let mk = zeroed_atomics;
        let config = PoolConfig { size, ..config };
        let trace = config.trace;
        let metrics = config.metrics;
        PmemPool {
            inner: Arc::new(Inner {
                volatile: mk(words),
                persistent: mk(words),
                dirty: mk(lines.div_ceil(64)),
                config,
                crashes: AtomicU64::new(0),
                global_stats: PersistStats::default(),
                journal: Journal::default(),
                trace_enabled: AtomicBool::new(trace.enabled),
                trace_buf_entries: AtomicUsize::new(trace.buf_entries),
                trace_next_tid: AtomicU64::new(0),
                trace_bufs: Mutex::new(Vec::new()),
                metrics_enabled: AtomicBool::new(metrics.enabled),
                metrics_window_ns: AtomicU64::new(metrics.window_ns.max(1)),
                metrics_base_ns: AtomicU64::new(metrics.base_ns),
                metrics_next_tid: AtomicU64::new(0),
                metrics_bufs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Pool size in bytes.
    pub fn size(&self) -> usize {
        self.inner.config.size
    }

    /// The latency model shared by this pool's handles.
    pub fn latency(&self) -> LatencyModel {
        self.inner.config.latency
    }

    /// Creates a per-thread access handle with a fresh simulated clock.
    ///
    /// When tracing is enabled, the handle's event ring is allocated here
    /// — once, up front — and its trace-thread id is the pool-wide handle
    /// creation ordinal (deterministic: handles are created in program
    /// order by the single-OS-thread VM).
    pub fn handle(&self) -> PmemHandle {
        let trace = if self.inner.trace_enabled.load(Ordering::Relaxed) {
            let tid = self
                .inner
                .trace_next_tid
                .fetch_add(1, Ordering::Relaxed)
                .min(u16::MAX as u64 - 1) as u16;
            let entries = self.inner.trace_buf_entries.load(Ordering::Relaxed);
            TraceHandle::new(TraceBuf::new(tid, entries))
        } else {
            TraceHandle::OFF
        };
        let metrics = if self.inner.metrics_enabled.load(Ordering::Relaxed) {
            let tid = self
                .inner
                .metrics_next_tid
                .fetch_add(1, Ordering::Relaxed)
                .min(u16::MAX as u64 - 1) as u16;
            let window = self.inner.metrics_window_ns.load(Ordering::Relaxed);
            let base = self.inner.metrics_base_ns.load(Ordering::Relaxed);
            MetricsHandle::new(MetricsBuf::new(tid, window, base))
        } else {
            MetricsHandle::OFF
        };
        PmemHandle {
            inner: Arc::clone(&self.inner),
            latency: self.inner.config.latency,
            clock_ns: 0,
            pending: Vec::new(),
            stats: PersistStats::default(),
            trace,
            metrics,
            costs: CostBreakdown::default(),
            log_depth: 0,
            shard: 0,
        }
    }

    /// Reconfigures tracing for handles created **after** this call.
    /// Existing handles keep (or keep lacking) their rings. Recovery
    /// drivers use this to trace only the post-crash segment.
    pub fn set_trace(&self, config: TraceConfig) {
        self.inner.trace_buf_entries.store(config.buf_entries.max(1), Ordering::Relaxed);
        self.inner.trace_enabled.store(config.enabled, Ordering::Relaxed);
    }

    /// True when newly created handles will record trace events.
    pub fn trace_enabled(&self) -> bool {
        self.inner.trace_enabled.load(Ordering::Relaxed)
    }

    /// Merges every ring folded so far (handles must have been dropped)
    /// into one deterministic [`Trace`], resetting the collector and the
    /// trace-thread counter. Returns `None` when tracing never produced
    /// anything (disabled and nothing collected).
    pub fn take_trace(&self) -> Option<Trace> {
        let bufs = std::mem::take(&mut *self.inner.trace_bufs.lock().expect("trace collector"));
        self.inner.trace_next_tid.store(0, Ordering::Relaxed);
        if bufs.is_empty() && !self.trace_enabled() {
            return None;
        }
        Some(Trace::from_bufs(bufs))
    }

    /// Reconfigures windowed metrics for handles created **after** this
    /// call (the same semantics as [`PmemPool::set_trace`]). Crash-under-
    /// load harnesses call this between segments with an updated
    /// `base_ns` so every segment's handles land on one global timeline.
    pub fn set_metrics(&self, config: MetricsConfig) {
        self.inner.metrics_window_ns.store(config.window_ns.max(1), Ordering::Relaxed);
        self.inner.metrics_base_ns.store(config.base_ns, Ordering::Relaxed);
        self.inner.metrics_enabled.store(config.enabled, Ordering::Relaxed);
    }

    /// True when newly created handles will record op spans.
    pub fn metrics_enabled(&self) -> bool {
        self.inner.metrics_enabled.load(Ordering::Relaxed)
    }

    /// Merges every metrics buffer folded so far (handles must have been
    /// dropped) into one deterministic [`ServiceMetrics`] timeline,
    /// resetting the collector and the metrics-thread counter. Returns
    /// `None` when metrics never produced anything.
    pub fn take_metrics(&self) -> Option<ServiceMetrics> {
        let bufs = std::mem::take(&mut *self.inner.metrics_bufs.lock().expect("metrics collector"));
        self.inner.metrics_next_tid.store(0, Ordering::Relaxed);
        if bufs.is_empty() && !self.metrics_enabled() {
            return None;
        }
        let window = self.inner.metrics_window_ns.load(Ordering::Relaxed);
        Some(ServiceMetrics::from_bufs(window, bufs))
    }

    /// Number of crashes injected so far.
    pub fn crash_count(&self) -> u64 {
        self.inner.crashes.load(Ordering::Relaxed)
    }

    /// Simulates a fail-stop failure (power loss, kernel panic, SIGKILL).
    ///
    /// Every line that was written back and fenced keeps its persistent
    /// value. Every line that was still dirty is resolved by the pool's
    /// [`CrashPolicy`] using `seed`: it either survives with its current
    /// volatile contents (a cache eviction happened to save it) or reverts to
    /// its last persisted contents. Afterwards the volatile image is reloaded
    /// from the persistent image, exactly as a fresh process mapping the NVM
    /// region would observe.
    ///
    /// Callers must ensure no handle is concurrently accessing the pool
    /// (crashed threads are, by definition, gone).
    pub fn crash(&self, seed: u64) -> CrashOutcome {
        let policy = self.inner.config.crash_policy.clone();
        self.crash_with(seed, &policy)
    }

    /// Like [`PmemPool::crash`], but resolves dirty lines with `policy`
    /// instead of the pool's configured policy. The crash oracle uses this
    /// to lose a chosen [`CrashPolicy::Subset`] of the lines that are dirty
    /// at the crash point it is exploring, without rebuilding the pool.
    pub fn crash_with(&self, seed: u64, policy: &CrashPolicy) -> CrashOutcome {
        let inner = &*self.inner;
        let lines = inner.config.size / CACHE_LINE;
        let mut rng = SplitMix64::new(seed ^ 0x1d0_c4a5);
        let mut evicted = 0usize;
        let mut dropped = 0usize;
        for l in 0..lines {
            if !self.is_dirty(l) {
                continue;
            }
            let survive = match policy {
                CrashPolicy::DropDirty => false,
                CrashPolicy::EvictAll => true,
                CrashPolicy::Random { persist_permille } => {
                    (rng.next() % 1000) < *persist_permille as u64
                }
                CrashPolicy::Subset { lost } => !lost.contains(&l),
            };
            if survive {
                self.writeback_line(l);
                evicted += 1;
            } else {
                dropped += 1;
            }
            self.clear_dirty(l);
        }
        // The "new process" sees only what persisted.
        for w in 0..inner.volatile.len() {
            let v = inner.persistent[w].load(Ordering::Relaxed);
            inner.volatile[w].store(v, Ordering::Relaxed);
        }
        inner.crashes.fetch_add(1, Ordering::Relaxed);
        inner.journal.record(|| PersistEventKind::Crash {
            policy: policy.name(),
            evicted,
            dropped,
        });
        if inner.trace_enabled.load(Ordering::Relaxed) {
            // Record the crash as a pool-level event, timestamped at the
            // latest simulated instant any (already-folded) thread
            // reached — crashed threads' handles are dropped before the
            // pool crashes, so this is the simulation's crash time.
            let mut bufs = inner.trace_bufs.lock().expect("trace collector");
            let ts = bufs.iter().filter_map(|b| b.last_ts()).max().unwrap_or(0);
            let mut cb = TraceBuf::new(u16::MAX, 1);
            cb.push(ts, EventKind::Crash, evicted as u64, dropped as u64);
            bufs.push(cb);
        }
        CrashOutcome { lines_evicted: evicted, lines_dropped: dropped }
    }

    /// Indices of all currently dirty lines, ascending. The crash oracle
    /// reads this at a prospective crash point to know which line subsets
    /// are worth losing.
    pub fn dirty_lines(&self) -> Vec<usize> {
        // Word-level scan: only words with set bits cost anything, so this
        // is O(bitmap words + dirty lines) rather than O(total lines) —
        // it runs once per crash state in the oracle's inner loop. Bits
        // beyond `lines` can never be set (stores are bounds-checked), so
        // no tail masking is needed.
        let mut out = Vec::new();
        for (w, word) in self.inner.dirty.iter().enumerate() {
            let mut bits = word.load(Ordering::Relaxed);
            while bits != 0 {
                out.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Total persist-relevant events (stores, write-backs, fences, crashes)
    /// observed by this pool since creation. Counted unconditionally and
    /// cheaply; see [`crate::journal`] for how the crash oracle uses deltas
    /// of this counter to find interesting crash points.
    pub fn persist_event_count(&self) -> u64 {
        self.inner.journal.seq()
    }

    /// Starts retaining persist events in a bounded ring of `capacity`
    /// entries (see [`crate::journal::PersistEvent`]).
    pub fn record_journal(&self, capacity: usize) {
        self.inner.journal.start(capacity);
    }

    /// Stops retaining persist events. The counter behind
    /// [`PmemPool::persist_event_count`] keeps advancing.
    pub fn stop_journal(&self) {
        self.inner.journal.stop();
    }

    /// Discards retained persist events (sequence numbers are not reset).
    pub fn clear_journal(&self) {
        self.inner.journal.clear();
    }

    /// The most recent `n` retained persist events, oldest first.
    pub fn journal_tail(&self, n: usize) -> Vec<PersistEvent> {
        self.inner.journal.tail(n)
    }

    /// Arms a persist trap: the operation that produces persist event
    /// number `at` (1-based, compared against
    /// [`PmemPool::persist_event_count`]) panics with a "persist-trap"
    /// message, simulating a crash *inside* a composite operation — e.g. an
    /// [`crate::alloc::NvAllocator`] call that issues several
    /// flush+fence sequences. Run the operation under
    /// [`std::panic::catch_unwind`], then [`PmemPool::crash`] and verify
    /// recovery. The trap disarms itself when it fires; pass `None` to
    /// disarm manually.
    pub fn set_persist_trap(&self, at: Option<u64>) {
        self.inner.journal.set_trap(at);
    }

    /// Returns a copy of the persistent image (for durability assertions and
    /// snapshot-based tests).
    pub fn persistent_snapshot(&self) -> Vec<u8> {
        let inner = &*self.inner;
        let mut out = Vec::with_capacity(inner.config.size);
        for w in &inner.persistent {
            out.extend_from_slice(&w.load(Ordering::Relaxed).to_le_bytes());
        }
        out
    }

    /// Aggregated statistics across all handles that have been dropped or
    /// explicitly merged, plus crash counts.
    pub fn global_stats(&self) -> StatsSnapshot {
        self.inner.global_stats.snapshot()
    }

    /// Reads a word directly from the *persistent* image, bypassing the
    /// volatile view. Intended for assertions about what actually persisted.
    ///
    /// # Panics
    /// Panics if `addr` is not 8-byte aligned or out of bounds.
    pub fn read_u64_persistent(&self, addr: PAddr) -> u64 {
        assert!(addr.is_multiple_of(8), "unaligned word read at {addr:#x}");
        self.inner.persistent[addr / 8].load(Ordering::Relaxed)
    }

    /// True if the line containing `addr` has unpersisted stores.
    pub fn is_line_dirty(&self, addr: PAddr) -> bool {
        self.is_dirty(line_of(addr))
    }

    fn is_dirty(&self, line: usize) -> bool {
        self.inner.is_dirty(line)
    }

    fn clear_dirty(&self, line: usize) {
        self.inner.clear_dirty(line);
    }

    fn writeback_line(&self, line: usize) {
        self.inner.writeback_line(line);
    }
}

/// What happened to dirty lines during a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashOutcome {
    /// Dirty lines that happened to be evicted and therefore survived.
    pub lines_evicted: usize,
    /// Dirty lines whose un-fenced contents were lost.
    pub lines_dropped: usize,
}

/// A per-thread handle onto a [`PmemPool`].
///
/// The handle carries the thread's simulated clock (nanoseconds), its queue
/// of issued-but-unfenced write-backs, and local statistics. It is
/// deliberately `!Sync`; create one per thread.
pub struct PmemHandle {
    inner: Arc<Inner>,
    latency: LatencyModel,
    clock_ns: u64,
    pending: Vec<usize>,
    stats: PersistStats,
    trace: TraceHandle,
    metrics: MetricsHandle,
    /// Per-category simulated-time attribution, accumulated
    /// unconditionally (a single add per charge — cheaper than branching
    /// on the trace handle in the per-instruction hot path) and folded
    /// into the trace ring at drop time; discarded when tracing is off.
    costs: CostBreakdown,
    /// Nesting depth of [`PmemHandle::begin_log`] scopes: while positive,
    /// stores count as log writes (bytes into `stats.log_bytes`, cost
    /// into the `Log` category).
    log_depth: u32,
    /// Allocator shard affinity (typically the simulated thread/core id).
    /// The sharded allocator routes this handle's allocations and frees to
    /// shard `shard % n_shards`; other allocator policies ignore it.
    shard: u32,
}

impl std::fmt::Debug for PmemHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmemHandle")
            .field("clock_ns", &self.clock_ns)
            .field("pending_writebacks", &self.pending.len())
            .finish()
    }
}

impl PmemHandle {
    #[inline]
    fn charge(&mut self, ns: u64) {
        self.charge_cat(Category::Work, ns);
    }

    #[inline]
    fn charge_cat(&mut self, cat: Category, ns: u64) {
        self.clock_ns += ns;
        // `cat` is a constant at every call site, so this folds to one add.
        self.costs.add(cat, ns);
        self.latency.realize(ns);
    }

    /// The store-path accounting tail: clock, log-byte counting, cost
    /// attribution, and the `store` event. Cost attribution rides the
    /// log-scope branch that log-byte counting needs anyway, so the only
    /// trace-specific work on the traced-off path is one untaken branch
    /// for the event push (measured: multiple separate branches here cost
    /// ~5% of interpreter throughput).
    #[inline(always)]
    fn charge_store_and_emit(&mut self, ns: u64, bytes: u64, addr: PAddr, value: u64) {
        self.clock_ns += ns;
        if self.log_depth > 0 {
            self.stats.log_bytes += bytes;
            self.costs.log_ns += ns;
        } else {
            self.costs.work_ns += ns;
        }
        if let Some(buf) = self.trace.as_buf_mut() {
            trace_push(buf, self.clock_ns, EventKind::Store, addr as u64, value);
        }
        self.latency.realize(ns);
    }

    #[inline]
    fn check_word(&self, addr: PAddr) -> usize {
        assert!(addr.is_multiple_of(8), "unaligned word access at {addr:#x}");
        assert!(addr + 8 <= self.inner.config.size, "out-of-bounds access at {addr:#x}");
        addr / 8
    }

    /// The thread's simulated clock, in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Advances the simulated clock by `ns` (used by interpreters and the DES
    /// harness to account for non-memory instruction costs and lock waits).
    pub fn advance(&mut self, ns: u64) {
        self.charge(ns);
    }

    /// Like [`PmemHandle::advance`], but attributes the time to an
    /// explicit cost [`Category`] (interpreters use this for scheme taxes
    /// such as Atlas's per-store tracking work).
    pub fn advance_as(&mut self, cat: Category, ns: u64) {
        self.charge_cat(cat, ns);
    }

    /// Opens a log scope: until the matching [`PmemHandle::end_log`],
    /// stores are accounted as log writes — their bytes accumulate in
    /// `log_bytes` and their cost in the `Log` category. Scopes nest.
    #[inline]
    pub fn begin_log(&mut self) {
        self.log_depth += 1;
    }

    /// Closes the innermost log scope (see [`PmemHandle::begin_log`]).
    #[inline]
    pub fn end_log(&mut self) {
        debug_assert!(self.log_depth > 0, "end_log without begin_log");
        self.log_depth = self.log_depth.saturating_sub(1);
    }

    /// True while inside a [`PmemHandle::begin_log`] scope.
    pub fn in_log(&self) -> bool {
        self.log_depth > 0
    }

    /// True when this handle records trace events (callers can skip
    /// computing event payloads otherwise).
    #[inline]
    pub fn trace_on(&self) -> bool {
        self.trace.is_on()
    }

    /// Emits a trace event at the handle's current simulated time.
    /// No-op (one branch) when tracing is off.
    #[inline]
    pub fn trace_event(&mut self, kind: EventKind, a: u64, b: u64) {
        self.trace.emit(self.clock_ns, kind, a, b);
    }

    /// Sets the simulated clock (used by the DES harness when a thread's
    /// logical time jumps forward to a lock-release event).
    pub fn set_clock_ns(&mut self, ns: u64) {
        self.clock_ns = ns;
    }

    /// True when this handle records windowed op metrics.
    #[inline]
    pub fn metrics_on(&self) -> bool {
        self.metrics.is_on()
    }

    /// Opens a service-operation span of `kind` (0 = generic, 1 = get,
    /// 2 = put) at the current simulated time. One untaken branch per
    /// marker when metrics and tracing are both off; allocates nothing
    /// either way.
    #[inline]
    pub fn op_begin(&mut self, kind: u64) {
        if let Some(buf) = self.metrics.as_buf_mut() {
            buf.op_begin(kind, self.clock_ns);
        }
        if let Some(buf) = self.trace.as_buf_mut() {
            trace_push(buf, self.clock_ns, EventKind::OpBegin, kind, 0);
        }
    }

    /// Closes the open service-operation span: records its latency into
    /// the window containing the end timestamp and attributes the
    /// persist-counter delta since the previous close to that window.
    #[inline]
    pub fn op_end(&mut self, kind: u64) {
        if let Some(buf) = self.metrics.as_buf_mut() {
            let c = Counters {
                loads: self.stats.loads,
                stores: self.stats.stores,
                nt_stores: self.stats.nt_stores,
                clwbs: self.stats.clwbs,
                fences: self.stats.fences,
                lines_persisted: self.stats.lines_persisted,
                log_bytes: self.stats.log_bytes,
            };
            buf.op_end(kind, self.clock_ns, &c);
        }
        if let Some(buf) = self.trace.as_buf_mut() {
            trace_push(buf, self.clock_ns, EventKind::OpEnd, kind, 0);
        }
    }

    /// Attributes the recovery span `[t0_ns, t1_ns)` (this handle's
    /// clock domain) of `phase` to the windowed metrics timeline.
    /// Recovery drivers call this beside the `RecoveryEnd` trace event.
    pub fn metrics_recovery(&mut self, phase: RecoveryPhase, t0_ns: u64, t1_ns: u64) {
        if let Some(buf) = self.metrics.as_buf_mut() {
            let base = buf.base_ns();
            buf.recovery_span(phase, base + t0_ns, base + t1_ns);
        }
    }

    /// This handle's allocator shard affinity (see
    /// [`crate::alloc::AllocPolicy::Sharded`]).
    #[inline]
    pub fn shard(&self) -> u32 {
        self.shard
    }

    /// Sets the allocator shard affinity; the VM assigns the simulated
    /// thread index at spawn time.
    pub fn set_shard(&mut self, shard: u32) {
        self.shard = shard;
    }

    /// The latency model in effect for this handle.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }

    /// Overrides the latency model for this handle only.
    pub fn set_latency(&mut self, latency: LatencyModel) {
        self.latency = latency;
    }

    /// Loads an 8-byte word.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of bounds.
    #[inline]
    pub fn read_u64(&mut self, addr: PAddr) -> u64 {
        let w = self.check_word(addr);
        self.stats.loads += 1;
        self.charge(self.latency.load_ns);
        self.inner.volatile[w].load(Ordering::Acquire)
    }

    /// Stores an 8-byte word into the volatile image and marks its line dirty.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of bounds.
    #[inline]
    pub fn write_u64(&mut self, addr: PAddr, value: u64) {
        let w = self.check_word(addr);
        self.stats.stores += 1;
        self.charge_store_and_emit(self.latency.store_ns, 8, addr, value);
        self.inner.volatile[w].store(value, Ordering::Release);
        let line = line_of(addr);
        let line_was_clean = !self.inner.is_dirty(line);
        self.inner.set_dirty(line);
        self.inner.journal.record(|| PersistEventKind::Store { addr, value, line_was_clean });
    }

    /// Stores a word with log-write accounting, without requiring an open
    /// log scope: identical in effect (stats, cost attribution, trace
    /// events, persistence semantics) to `begin_log(); write_u64(addr,
    /// value); end_log()`, but skips the per-word scope test. JUSTDO
    /// writes three log words for *every* application store, which makes
    /// this the hottest store variant in that scheme.
    ///
    /// # Panics
    /// Panics if `addr` is unaligned or out of bounds.
    #[inline]
    pub fn log_write_u64(&mut self, addr: PAddr, value: u64) {
        let w = self.check_word(addr);
        self.stats.stores += 1;
        let ns = self.latency.store_ns;
        self.clock_ns += ns;
        self.stats.log_bytes += 8;
        self.costs.log_ns += ns;
        if let Some(buf) = self.trace.as_buf_mut() {
            trace_push(buf, self.clock_ns, EventKind::Store, addr as u64, value);
        }
        self.latency.realize(ns);
        self.inner.volatile[w].store(value, Ordering::Release);
        let line = line_of(addr);
        let line_was_clean = !self.inner.is_dirty(line);
        self.inner.set_dirty(line);
        self.inner.journal.record(|| PersistEventKind::Store { addr, value, line_was_clean });
    }

    /// Non-temporal store: bypasses the cache, updating both images at once.
    /// Used by REDO-log appends in Mnemosyne-style systems.
    #[inline]
    pub fn nt_store_u64(&mut self, addr: PAddr, value: u64) {
        let w = self.check_word(addr);
        self.stats.nt_stores += 1;
        self.charge_store_and_emit(self.latency.nt_store_cost(), 8, addr, value);
        self.inner.volatile[w].store(value, Ordering::Release);
        self.inner.persistent[w].store(value, Ordering::Release);
        self.inner.journal.record(|| PersistEventKind::NtStore { addr, value });
    }

    /// True if the line containing `addr` has unpersisted stores. Flush
    /// machinery that maintains the invariant "everything reachable is
    /// already persistent" (the NVTraverse traversal window) uses this to
    /// skip write-backs of lines other operations have already published.
    #[inline]
    pub fn is_line_dirty(&self, addr: PAddr) -> bool {
        self.inner.is_dirty(line_of(addr))
    }

    /// Issues a write-back (`clwb`) for the line containing `addr`. The line
    /// is only guaranteed persistent after the next [`PmemHandle::sfence`].
    #[inline]
    pub fn clwb(&mut self, addr: PAddr) {
        assert!(addr < self.inner.config.size, "clwb out of bounds at {addr:#x}");
        let line = line_of(addr);
        self.stats.clwbs += 1;
        let ns = self.latency.clwb_issue_ns;
        self.clock_ns += ns;
        if !self.pending.contains(&line) {
            self.pending.push(line);
        }
        self.inner.journal.record(|| PersistEventKind::Clwb { line });
        self.costs.clwb_ns += ns;
        if let Some(buf) = self.trace.as_buf_mut() {
            trace_push(buf, self.clock_ns, EventKind::Clwb, line as u64, 0);
        }
        self.latency.realize(ns);
    }

    /// Issues write-backs for every line spanned by `[addr, addr + len)`.
    pub fn clwb_range(&mut self, addr: PAddr, len: usize) {
        for line in lines_spanning(addr, len) {
            self.clwb(line * CACHE_LINE);
        }
    }

    /// Persist fence: waits for all write-backs issued by this handle to
    /// reach the persistent image, then returns. Cost grows with the number
    /// of pending lines (each needs a round trip to the memory controller).
    pub fn sfence(&mut self) {
        let n = self.pending.len() as u64;
        self.stats.fences += 1;
        self.stats.lines_persisted += n;
        let ns = self.latency.fence_cost(n);
        self.clock_ns += ns;
        self.costs.fence_ns += ns;
        self.latency.realize(ns);
        // Iterate in place and clear afterwards so `pending` keeps its
        // capacity across fence epochs (taking the Vec would free it and
        // force the next clwb to re-allocate). The clone in the closure is
        // only materialized when the journal is recording.
        for &line in &self.pending {
            self.inner.writeback_line(line);
            self.inner.clear_dirty(line);
        }
        self.inner.journal.record(|| PersistEventKind::Sfence { lines: self.pending.clone() });
        self.pending.clear();
        self.trace.emit(self.clock_ns, EventKind::Fence, n, 0);
    }

    /// Convenience: `clwb` every line of the range, then `sfence`.
    pub fn persist(&mut self, addr: PAddr, len: usize) {
        self.clwb_range(addr, len);
        self.sfence();
    }

    /// Number of write-backs issued but not yet fenced.
    pub fn pending_writebacks(&self) -> usize {
        self.pending.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`. Not atomic; callers must
    /// provide their own synchronization (e.g. a FASE lock).
    pub fn read_bytes(&mut self, addr: PAddr, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            let a = addr + i;
            let w = a / 8;
            assert!(a < self.inner.config.size, "out-of-bounds read at {a:#x}");
            let word = self.inner.volatile[w].load(Ordering::Acquire);
            *b = word.to_le_bytes()[a % 8];
        }
        self.stats.loads += buf.len().div_ceil(8) as u64;
        self.charge(self.latency.load_ns * buf.len().div_ceil(8) as u64);
    }

    /// Writes `buf` starting at `addr`, marking spanned lines dirty. Not
    /// atomic; callers must provide their own synchronization.
    pub fn write_bytes(&mut self, addr: PAddr, buf: &[u8]) {
        for (i, b) in buf.iter().enumerate() {
            let a = addr + i;
            let w = a / 8;
            assert!(a < self.inner.config.size, "out-of-bounds write at {a:#x}");
            let mut word = self.inner.volatile[w].load(Ordering::Acquire).to_le_bytes();
            word[a % 8] = *b;
            self.inner.volatile[w].store(u64::from_le_bytes(word), Ordering::Release);
        }
        for line in lines_spanning(addr, buf.len()) {
            self.inner.set_dirty(line);
        }
        self.stats.stores += buf.len().div_ceil(8) as u64;
        let len = buf.len();
        self.charge_store_and_emit(
            self.latency.store_ns * len.div_ceil(8) as u64,
            len as u64,
            addr,
            len as u64,
        );
        self.inner.journal.record(|| PersistEventKind::StoreBytes { addr, len });
    }

    /// Atomically ORs `bits` into the word at `addr` (used by lock bitmaps).
    pub fn fetch_or_u64(&mut self, addr: PAddr, bits: u64) -> u64 {
        let w = self.check_word(addr);
        self.stats.stores += 1;
        let line_was_clean = !self.inner.is_dirty(line_of(addr));
        self.inner.set_dirty(line_of(addr));
        let prev = self.inner.volatile[w].fetch_or(bits, Ordering::AcqRel);
        self.charge_store_and_emit(self.latency.store_ns, 8, addr, prev | bits);
        self.inner.journal.record(|| PersistEventKind::Store {
            addr,
            value: prev | bits,
            line_was_clean,
        });
        prev
    }

    /// Atomically ANDs `bits` into the word at `addr`.
    pub fn fetch_and_u64(&mut self, addr: PAddr, bits: u64) -> u64 {
        let w = self.check_word(addr);
        self.stats.stores += 1;
        let line_was_clean = !self.inner.is_dirty(line_of(addr));
        self.inner.set_dirty(line_of(addr));
        let prev = self.inner.volatile[w].fetch_and(bits, Ordering::AcqRel);
        self.charge_store_and_emit(self.latency.store_ns, 8, addr, prev & bits);
        self.inner.journal.record(|| PersistEventKind::Store {
            addr,
            value: prev & bits,
            line_was_clean,
        });
        prev
    }

    /// Compare-and-swap on the word at `addr`. Returns the previous value.
    pub fn compare_exchange_u64(&mut self, addr: PAddr, current: u64, new: u64) -> Result<u64, u64> {
        let w = self.check_word(addr);
        self.stats.stores += 1;
        let ns = self.latency.store_ns;
        self.clock_ns += ns;
        if self.log_depth > 0 {
            self.stats.log_bytes += 8;
            self.costs.log_ns += ns;
        } else {
            self.costs.work_ns += ns;
        }
        let line_was_clean = !self.inner.is_dirty(line_of(addr));
        let r = self.inner.volatile[w].compare_exchange(current, new, Ordering::AcqRel, Ordering::Acquire);
        // The store event only fires when the exchange took effect.
        if r.is_ok() {
            if let Some(buf) = self.trace.as_buf_mut() {
                trace_push(buf, self.clock_ns, EventKind::Store, addr as u64, new);
            }
        }
        self.latency.realize(ns);
        if r.is_ok() {
            self.inner.set_dirty(line_of(addr));
            self.inner.journal.record(|| PersistEventKind::Store {
                addr,
                value: new,
                line_was_clean,
            });
        }
        r
    }

    /// This handle's local statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Folds this handle's statistics into the pool-global counters and
    /// resets the local ones.
    pub fn merge_stats(&mut self) {
        self.inner.global_stats.merge(&self.stats);
        self.stats = PersistStats::default();
    }
}

impl Drop for PmemHandle {
    fn drop(&mut self) {
        self.inner.global_stats.merge(&self.stats);
        if let Some(mut buf) = self.trace.take() {
            // Cost attribution accumulates inline in the handle (see the
            // `costs` field); it becomes part of the trace only here.
            buf.costs.merge(&self.costs);
            self.inner.trace_bufs.lock().expect("trace collector poisoned").push(buf);
        }
        if let Some(buf) = self.metrics.take() {
            self.inner.metrics_bufs.lock().expect("metrics collector poisoned").push(buf);
        }
    }
}

/// Outlined traced-event push. `#[cold]` keeps the (much larger) ring
/// code out of the inlined store path, so the traced-off interpreter hot
/// loop stays icache-tight.
#[cold]
fn trace_push(buf: &mut TraceBuf, ts: u64, kind: EventKind, a: u64, b: u64) {
    buf.push(ts, kind, a, b);
}

/// Small deterministic PRNG for crash-time eviction decisions.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_for_tests())
    }

    #[test]
    fn write_read_roundtrip() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(128, 0xdead_beef);
        assert_eq!(h.read_u64(128), 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_word_access_panics() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(129, 1);
    }

    #[test]
    #[should_panic(expected = "out-of-bounds")]
    fn out_of_bounds_access_panics() {
        let p = pool();
        let mut h = p.handle();
        h.read_u64(p.size());
    }

    #[test]
    fn unflushed_store_lost_on_crash() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(256, 7);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 0);
    }

    #[test]
    fn flushed_and_fenced_store_survives_crash() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(256, 7);
        h.clwb(256);
        h.sfence();
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 7);
    }

    #[test]
    fn clwb_without_fence_is_not_durable_under_drop_policy() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(256, 7);
        h.clwb(256);
        drop(h); // never fenced
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 0);
    }

    #[test]
    fn evict_all_policy_persists_dirty_lines() {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.crash_policy = CrashPolicy::EvictAll;
        let p = PmemPool::new(cfg);
        let mut h = p.handle();
        h.write_u64(256, 9);
        drop(h);
        let outcome = p.crash(0);
        assert_eq!(outcome.lines_evicted, 1);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 9);
    }

    #[test]
    fn random_policy_is_deterministic_for_seed() {
        let mk = || {
            let mut cfg = PoolConfig::small_for_tests();
            cfg.crash_policy = CrashPolicy::Random { persist_permille: 500 };
            let p = PmemPool::new(cfg);
            let mut h = p.handle();
            for i in 0..64 {
                h.write_u64(i * 64, i as u64 + 1);
            }
            drop(h);
            p.crash(42);
            p.persistent_snapshot()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn line_granular_writeback_is_all_or_nothing() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(512, 1);
        h.write_u64(520, 2); // same line
        h.clwb(512);
        h.sfence();
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(512), 1);
        assert_eq!(h.read_u64(520), 2);
    }

    #[test]
    fn nt_store_is_immediately_durable() {
        let p = pool();
        let mut h = p.handle();
        h.nt_store_u64(640, 11);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(640), 11);
    }

    #[test]
    fn rewritten_line_after_fence_is_dirty_again() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(256, 1);
        h.persist(256, 8);
        h.write_u64(256, 2);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 1, "only the fenced value survives");
    }

    #[test]
    fn bytes_roundtrip_and_span_lines() {
        let p = pool();
        let mut h = p.handle();
        let data: Vec<u8> = (0..100).collect();
        h.write_bytes(60, &data);
        let mut back = vec![0u8; 100];
        h.read_bytes(60, &mut back);
        assert_eq!(back, data);
        h.persist(60, 100);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        let mut back = vec![0u8; 100];
        h.read_bytes(60, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn clock_accumulates_costs() {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.latency = LatencyModel::default();
        let p = PmemPool::new(cfg);
        let mut h = p.handle();
        let t0 = h.clock_ns();
        h.write_u64(128, 1);
        h.clwb(128);
        h.sfence();
        let lat = p.latency();
        assert_eq!(
            h.clock_ns() - t0,
            lat.store_ns + lat.clwb_issue_ns + lat.fence_cost(1)
        );
    }

    #[test]
    fn duplicate_clwb_same_line_coalesces_in_queue() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(128, 1);
        h.write_u64(136, 2);
        h.clwb(128);
        h.clwb(136);
        assert_eq!(h.pending_writebacks(), 1);
    }

    #[test]
    fn stats_track_operations() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(0, 1);
        h.read_u64(0);
        h.clwb(0);
        h.sfence();
        let s = h.stats();
        assert_eq!(s.stores, 1);
        assert_eq!(s.loads, 1);
        assert_eq!(s.clwbs, 1);
        assert_eq!(s.fences, 1);
        assert_eq!(s.lines_persisted, 1);
        drop(h);
        assert_eq!(p.global_stats().stores, 1);
    }

    #[test]
    fn atomics_mark_lines_dirty() {
        let p = pool();
        let mut h = p.handle();
        h.fetch_or_u64(192, 0b1010);
        assert!(p.is_line_dirty(192));
        assert_eq!(h.read_u64(192), 0b1010);
        assert_eq!(h.fetch_and_u64(192, 0b0010), 0b1010);
        assert_eq!(h.read_u64(192), 0b0010);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(192, 5);
        assert_eq!(h.compare_exchange_u64(192, 5, 6), Ok(5));
        assert_eq!(h.compare_exchange_u64(192, 5, 7), Err(6));
        assert_eq!(h.read_u64(192), 6);
    }

    #[test]
    fn subset_policy_loses_exactly_the_chosen_lines() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(0 * 64, 1);
        h.write_u64(3 * 64, 3);
        h.write_u64(7 * 64, 7);
        drop(h);
        assert_eq!(p.dirty_lines(), vec![0, 3, 7]);
        let outcome = p.crash_with(0, &CrashPolicy::losing([3]));
        assert_eq!(outcome, CrashOutcome { lines_evicted: 2, lines_dropped: 1 });
        let mut h = p.handle();
        assert_eq!(h.read_u64(0), 1, "line 0 survived");
        assert_eq!(h.read_u64(3 * 64), 0, "line 3 lost");
        assert_eq!(h.read_u64(7 * 64), 7, "line 7 survived");
        assert!(p.dirty_lines().is_empty(), "crash resolves all dirty lines");
    }

    #[test]
    fn subset_extremes_match_drop_and_evict() {
        for (lost, expect) in [(vec![], 5u64), (vec![1], 0u64)] {
            let p = pool();
            let mut h = p.handle();
            h.write_u64(64, 5);
            drop(h);
            p.crash_with(0, &CrashPolicy::losing(lost));
            let mut h = p.handle();
            assert_eq!(h.read_u64(64), expect);
        }
    }

    #[test]
    fn persist_event_count_advances_on_persist_relevant_ops_only() {
        let p = pool();
        let mut h = p.handle();
        let c0 = p.persist_event_count();
        h.read_u64(0); // loads are not persist events
        assert_eq!(p.persist_event_count(), c0);
        h.write_u64(0, 1); // store
        h.clwb(0); // clwb
        h.sfence(); // fence
        h.nt_store_u64(64, 2); // nt store
        assert_eq!(p.persist_event_count(), c0 + 4);
    }

    #[test]
    fn journal_records_tail_with_dirty_transitions() {
        let p = pool();
        p.record_journal(16);
        let mut h = p.handle();
        h.write_u64(128, 1);
        h.write_u64(136, 2); // same line: no clean->dirty transition
        h.clwb(128);
        h.sfence();
        drop(h);
        p.crash(0);
        let tail = p.journal_tail(16);
        assert_eq!(tail.len(), 5);
        assert!(matches!(
            tail[0].kind,
            PersistEventKind::Store { line_was_clean: true, .. }
        ));
        assert!(matches!(
            tail[1].kind,
            PersistEventKind::Store { line_was_clean: false, .. }
        ));
        assert!(matches!(tail[2].kind, PersistEventKind::Clwb { line: 2 }));
        assert!(matches!(&tail[3].kind, PersistEventKind::Sfence { lines } if lines == &vec![2]));
        assert!(
            matches!(tail[4].kind, PersistEventKind::Crash { policy: "drop-dirty", .. }),
            "{:?}",
            tail[4]
        );
        // Seqnos are consecutive and match the global counter.
        for w in tail.windows(2) {
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
        assert_eq!(p.persist_event_count(), tail[4].seq + 1);
    }

    #[test]
    fn atomic_rmw_ops_are_journaled_as_stores() {
        let p = pool();
        p.record_journal(16);
        let mut h = p.handle();
        h.fetch_or_u64(0, 0b1);
        h.fetch_and_u64(0, 0b1);
        assert_eq!(h.compare_exchange_u64(0, 1, 9), Ok(1));
        assert!(h.compare_exchange_u64(0, 1, 5).is_err());
        let tail = p.journal_tail(16);
        assert_eq!(tail.len(), 3, "failed CAS is not a persist event");
        assert!(matches!(tail[2].kind, PersistEventKind::Store { value: 9, .. }));
    }

    #[test]
    fn crash_resets_volatile_from_persistent() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(256, 1);
        h.persist(256, 8);
        h.write_u64(256, 99);
        h.write_u64(320, 77);
        drop(h);
        let outcome = p.crash(0);
        assert_eq!(outcome.lines_dropped, 2);
        let mut h = p.handle();
        assert_eq!(h.read_u64(256), 1);
        assert_eq!(h.read_u64(320), 0);
    }

    fn traced_pool() -> PmemPool {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.latency = LatencyModel::default(); // nonzero so cost attribution is visible
        cfg.trace = TraceConfig { enabled: true, buf_entries: 1 << 10 };
        PmemPool::new(cfg)
    }

    #[test]
    fn trace_is_off_by_default_in_tests() {
        let p = pool();
        let mut h = p.handle();
        assert!(!h.trace_on());
        h.write_u64(0, 1);
        h.persist(0, 8);
        drop(h);
        assert!(p.take_trace().is_none());
    }

    #[test]
    fn trace_records_memory_ops_with_clock_timestamps() {
        let p = traced_pool();
        let mut h = p.handle();
        h.write_u64(64, 7);
        h.clwb(64);
        h.sfence();
        drop(h);
        let t = p.take_trace().expect("tracing enabled");
        let counts = t.counts_by_kind();
        assert_eq!(counts[EventKind::Store as usize], 1);
        assert_eq!(counts[EventKind::Clwb as usize], 1);
        assert_eq!(counts[EventKind::Fence as usize], 1);
        assert!(t.events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "sorted by ts");
        assert!(t.costs.clwb_ns > 0 && t.costs.fence_ns > 0 && t.costs.work_ns > 0);
        assert_eq!(t.costs.log_ns, 0, "no log scope was opened");
    }

    #[test]
    fn log_scope_counts_bytes_and_attributes_cost() {
        let p = traced_pool();
        let mut h = p.handle();
        h.write_u64(0, 1); // outside scope
        h.begin_log();
        assert!(h.in_log());
        h.write_u64(8, 2);
        h.write_u64(16, 3);
        h.write_bytes(64, &[0xAB; 12]);
        h.end_log();
        assert!(!h.in_log());
        h.write_u64(24, 4); // outside again
        assert_eq!(h.stats().log_bytes, 8 + 8 + 12);
        drop(h);
        let t = p.take_trace().unwrap();
        assert!(t.costs.log_ns > 0);
        assert!(t.costs.work_ns > 0);
    }

    #[test]
    fn log_bytes_flow_into_global_stats() {
        let p = traced_pool();
        let mut h = p.handle();
        h.begin_log();
        h.write_u64(0, 1);
        h.end_log();
        drop(h);
        assert_eq!(p.global_stats().log_bytes, 8);
    }

    #[test]
    fn crash_appends_pool_level_crash_event() {
        let p = traced_pool();
        let mut h = p.handle();
        h.write_u64(0, 5);
        h.persist(0, 8);
        h.write_u64(64, 6); // left dirty -> dropped by crash
        drop(h);
        p.crash(0);
        let t = p.take_trace().unwrap();
        let crash: Vec<_> =
            t.events.iter().filter(|e| e.kind == EventKind::Crash).collect();
        assert_eq!(crash.len(), 1);
        assert_eq!(crash[0].thread, u16::MAX);
        assert_eq!(crash[0].b, 1, "one dirty line dropped");
        let max_ts = t.events.iter().map(|e| e.ts_ns).max().unwrap();
        assert_eq!(crash[0].ts_ns, max_ts, "crash is the final event");
    }

    #[test]
    fn take_trace_drains_and_resets_thread_ids() {
        let p = traced_pool();
        let mut h = p.handle();
        h.write_u64(0, 1);
        drop(h);
        let t1 = p.take_trace().unwrap();
        assert_eq!(t1.events[0].thread, 0);
        let mut h = p.handle();
        h.write_u64(0, 2);
        drop(h);
        let t2 = p.take_trace().unwrap();
        assert_eq!(t2.events[0].thread, 0, "tid counter resets on take");
    }

    #[test]
    fn set_trace_affects_only_later_handles() {
        let p = pool();
        let mut h = p.handle();
        h.write_u64(0, 1);
        p.set_trace(TraceConfig { enabled: true, buf_entries: 64 });
        h.write_u64(8, 2); // pre-enable handle stays untraced
        drop(h);
        let mut h2 = p.handle();
        h2.write_u64(16, 3);
        drop(h2);
        let t = p.take_trace().unwrap();
        assert_eq!(t.events.len(), 1);
        assert_eq!(t.events[0].a, 16);
    }

    fn metered_pool() -> PmemPool {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.latency = LatencyModel::default();
        cfg.metrics = MetricsConfig::with_window(1_000);
        PmemPool::new(cfg)
    }

    #[test]
    fn metrics_are_off_by_default() {
        let p = pool();
        let mut h = p.handle();
        assert!(!h.metrics_on());
        h.op_begin(1);
        h.op_end(1);
        drop(h);
        assert!(p.take_metrics().is_none());
    }

    #[test]
    fn op_spans_record_latency_and_counter_deltas() {
        let p = metered_pool();
        let mut h = p.handle();
        h.op_begin(2);
        h.write_u64(0, 1);
        h.persist(0, 8);
        h.op_end(2);
        let spanned = h.clock_ns();
        drop(h);
        let m = p.take_metrics().expect("metrics enabled");
        assert_eq!(m.total_ops(), 1);
        let w = &m.windows[(spanned / 1_000) as usize];
        assert_eq!(w.ops[2], 1);
        assert_eq!(w.lat.max(), spanned, "span covered the whole handle life");
        assert_eq!(w.counters.stores, 1);
        assert_eq!(w.counters.clwbs, 1);
        assert_eq!(w.counters.fences, 1);
    }

    #[test]
    fn op_spans_also_emit_trace_events_when_tracing() {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.trace = TraceConfig { enabled: true, buf_entries: 64 };
        let p = PmemPool::new(cfg);
        let mut h = p.handle();
        h.op_begin(1);
        h.advance(40);
        h.op_end(1);
        drop(h);
        let t = p.take_trace().unwrap();
        let counts = t.counts_by_kind();
        assert_eq!(counts[EventKind::OpBegin as usize], 1);
        assert_eq!(counts[EventKind::OpEnd as usize], 1);
        let end = t.events.iter().find(|e| e.kind == EventKind::OpEnd).unwrap();
        assert_eq!(end.b, 40, "OpEnd carries the span duration");
    }

    #[test]
    fn set_metrics_affects_only_later_handles_and_applies_base() {
        let p = pool();
        let mut h = p.handle();
        h.op_begin(0);
        h.op_end(0);
        p.set_metrics(MetricsConfig::with_window(1_000).at_base(5_000));
        drop(h);
        let mut h2 = p.handle();
        h2.op_begin(1);
        h2.advance(10);
        h2.op_end(1);
        h2.metrics_recovery(RecoveryPhase::Rebuild, 10, 30);
        drop(h2);
        let m = p.take_metrics().unwrap();
        assert_eq!(m.total_ops(), 1, "pre-enable handle recorded nothing");
        assert_eq!(m.windows[5].ops[1], 1, "base offset shifts the window");
        assert_eq!(m.windows[5].recovery_ns[3], 20);
    }

    #[test]
    fn take_metrics_drains_collector() {
        let p = metered_pool();
        let mut h = p.handle();
        h.op_begin(0);
        h.op_end(0);
        drop(h);
        assert_eq!(p.take_metrics().unwrap().total_ops(), 1);
        assert_eq!(p.take_metrics().unwrap().total_ops(), 0, "collector drained");
    }

    #[test]
    fn trace_ring_overflow_reports_exact_drop_count() {
        let mut cfg = PoolConfig::small_for_tests();
        cfg.trace = TraceConfig { enabled: true, buf_entries: 8 };
        let p = PmemPool::new(cfg);
        let mut h = p.handle();
        for i in 0..20u64 {
            h.write_u64(i as usize * 8, i);
        }
        drop(h);
        let t = p.take_trace().unwrap();
        assert_eq!(t.pushed, 20);
        assert_eq!(t.dropped, 12);
        assert_eq!(t.events.len(), 8);
    }
}
