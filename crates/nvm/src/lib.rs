//! Simulated hybrid nonvolatile memory substrate for the iDO reproduction.
//!
//! The iDO paper (MICRO 2018) assumes a near-term hybrid architecture: part of
//! main memory is nonvolatile, while the core, registers, and caches remain
//! volatile. Programs write persistent data through ordinary stores that land
//! in the (volatile) cache; data only survives a crash once its cache line has
//! been explicitly written back (`clwb`/`clflush`) and the write-back has been
//! ordered by a persist fence (`sfence`) — or once the line happens to be
//! evicted by the cache on its own schedule.
//!
//! This crate models exactly that contract in software:
//!
//! * [`PmemPool`] owns two images of the same address space: a **volatile**
//!   image (the cache + DRAM view that ordinary loads and stores touch) and a
//!   **persistent** image (the NVM view that survives [`PmemPool::crash`]).
//! * Stores mark the containing 64-byte line *dirty*. [`PmemHandle::clwb`]
//!   queues a write-back; [`PmemHandle::sfence`] completes all queued
//!   write-backs, copying those lines into the persistent image.
//! * A [`PmemPool::crash`] discards the volatile image. Each line that was
//!   dirty at crash time *may or may not* have been evicted beforehand, chosen
//!   pseudo-randomly — a correct failure-atomicity scheme must be safe under
//!   **every** subset, which is what the property tests in this workspace
//!   exercise.
//! * All operations charge simulated nanoseconds to a per-handle clock using a
//!   configurable [`LatencyModel`], reproducing the paper's NVM-latency
//!   sensitivity experiments (Fig. 9) deterministically.
//!
//! On top of the raw pool sit a crash-consistent free-list allocator
//! ([`alloc::NvAllocator`]) and an Atlas-style region manager with named
//! persistent roots ([`root::RootTable`]).
//!
//! # Example
//!
//! ```
//! use ido_nvm::{PmemPool, PoolConfig};
//!
//! let pool = PmemPool::new(PoolConfig::default());
//! let mut h = pool.handle();
//! let addr = 4096;
//! h.write_u64(addr, 42);
//! h.clwb(addr);
//! h.sfence();
//! pool.crash(1);
//! let mut h = pool.handle();
//! assert_eq!(h.read_u64(addr), 42); // survived: it was flushed and fenced
//! ```

#![deny(missing_docs)]

pub mod alloc;
mod error;
pub mod journal;
mod latency;
mod line;
pub mod pad;
mod pool;
pub mod root;
mod stats;

pub use alloc::AllocPolicy;
pub use error::NvmError;
pub use pad::CachePadded;
pub use journal::{PersistEvent, PersistEventKind};
pub use latency::{EmulationMode, LatencyModel};
pub use line::{line_of, line_offset, CACHE_LINE};
pub use pool::{CrashOutcome, CrashPolicy, PmemHandle, PmemPool, PoolConfig};
pub use stats::{PersistStats, StatsSnapshot};
// Re-exported so pool users can configure windowed metrics without a
// direct ido-metrics dependency.
pub use ido_metrics::{MetricsConfig, ServiceMetrics};

/// A byte offset into a [`PmemPool`]'s address space.
///
/// The pool address space starts at 0; word accesses must be 8-byte aligned,
/// matching the paper's assumption that writes are atomic at 8-byte
/// granularity.
pub type PAddr = usize;

/// The distinguished null address. Offset 0 is reserved by the pool header so
/// no live object ever has address 0.
pub const NULL: PAddr = 0;
