//! Cache-line padding for contended data.
//!
//! The simulated machine runs many logical threads whose hot metadata
//! (global persistence counters, lock-table entries, per-shard allocator
//! state) lives in ordinary host memory. When sweeps fan simulations out
//! over real OS threads (`ido-par`), adjacent atomics in one cache line
//! false-share and serialize the host cores. [`CachePadded`] aligns and
//! pads a value to one 64-byte line so neighbouring instances never share
//! a line.

/// Aligns `T` to a 64-byte cache line, padding it to fill the line.
///
/// `Deref`/`DerefMut` make the wrapper transparent at use sites:
/// `padded.fetch_add(1, ...)` works directly on a
/// `CachePadded<AtomicU64>`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn padded_values_occupy_distinct_lines() {
        assert_eq!(std::mem::align_of::<CachePadded<AtomicU64>>(), 64);
        assert!(std::mem::size_of::<CachePadded<AtomicU64>>() >= 64);
        let pair = [CachePadded::new(AtomicU64::new(0)), CachePadded::new(AtomicU64::new(0))];
        let a = &pair[0] as *const _ as usize;
        let b = &pair[1] as *const _ as usize;
        assert!(b - a >= 64, "adjacent padded atomics must not share a line");
    }

    #[test]
    fn deref_is_transparent() {
        let mut c = CachePadded::new(7u64);
        *c += 1;
        assert_eq!(*c, 8);
        assert_eq!(c.into_inner(), 8);
        let a = CachePadded::new(AtomicU64::new(1));
        a.fetch_add(2, Ordering::Relaxed);
        assert_eq!(a.load(Ordering::Relaxed), 3);
    }
}
