//! Error type for pool, allocator, and region-manager operations.

use std::error::Error;
use std::fmt;

/// Errors returned by fallible NVM substrate operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NvmError {
    /// The allocator could not satisfy a request of the given size.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
    },
    /// An address was outside the pool or violated alignment rules.
    BadAddress {
        /// The offending address.
        addr: usize,
    },
    /// A named root slot was requested but the root table is full.
    RootTableFull,
    /// The pool header was missing or corrupt when re-attaching after a
    /// crash.
    CorruptHeader {
        /// Human-readable detail.
        detail: String,
    },
    /// Freeing an address that is not the start of a live allocation.
    InvalidFree {
        /// The offending address.
        addr: usize,
    },
}

impl fmt::Display for NvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmError::OutOfMemory { requested } => {
                write!(f, "persistent allocation of {requested} bytes failed")
            }
            NvmError::BadAddress { addr } => write!(f, "bad persistent address {addr:#x}"),
            NvmError::RootTableFull => write!(f, "persistent root table is full"),
            NvmError::CorruptHeader { detail } => write!(f, "corrupt pool header: {detail}"),
            NvmError::InvalidFree { addr } => {
                write!(f, "free of non-allocated address {addr:#x}")
            }
        }
    }
}

impl Error for NvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_and_nonempty() {
        let errs = [
            NvmError::OutOfMemory { requested: 64 },
            NvmError::BadAddress { addr: 3 },
            NvmError::RootTableFull,
            NvmError::CorruptHeader { detail: "bad magic".into() },
            NvmError::InvalidFree { addr: 8 },
        ];
        for e in errs {
            let s = format!("{e}");
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NvmError>();
    }
}
