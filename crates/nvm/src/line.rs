//! Cache-line geometry helpers.

/// Size of a cache line in bytes. Write-back to NVM happens at this
/// granularity, matching the x86 machines the paper targets.
pub const CACHE_LINE: usize = 64;

/// Number of 8-byte words per cache line.
pub(crate) const WORDS_PER_LINE: usize = CACHE_LINE / 8;

/// Index of the cache line containing byte address `addr`.
#[inline]
pub fn line_of(addr: usize) -> usize {
    addr / CACHE_LINE
}

/// Offset of `addr` within its cache line.
#[inline]
pub fn line_offset(addr: usize) -> usize {
    addr % CACHE_LINE
}

/// Iterator over the line indices spanned by the byte range `[addr, addr+len)`.
pub(crate) fn lines_spanning(addr: usize, len: usize) -> impl Iterator<Item = usize> {
    let first = line_of(addr);
    let last = if len == 0 { first } else { line_of(addr + len - 1) };
    first..=last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_math() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 1);
        assert_eq!(line_offset(65), 1);
    }

    #[test]
    fn spanning_single_line() {
        let v: Vec<_> = lines_spanning(8, 8).collect();
        assert_eq!(v, vec![0]);
    }

    #[test]
    fn spanning_multiple_lines() {
        let v: Vec<_> = lines_spanning(60, 16).collect();
        assert_eq!(v, vec![0, 1]);
    }

    #[test]
    fn spanning_zero_len() {
        let v: Vec<_> = lines_spanning(128, 0).collect();
        assert_eq!(v, vec![2]);
    }
}
