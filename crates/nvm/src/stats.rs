//! Operation counters for persistence-cost analysis.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pad::CachePadded;

/// Internal mutable counter block. Per-handle instances use it through
/// `&mut`-free atomic adds so the same type can serve as the pool-global
/// accumulator.
#[derive(Debug, Default)]
pub struct PersistStats {
    /// Word loads.
    pub loads: u64,
    /// Word stores (cached).
    pub stores: u64,
    /// Non-temporal stores.
    pub nt_stores: u64,
    /// `clwb`/`clflush` issues.
    pub clwbs: u64,
    /// Persist fences executed.
    pub fences: u64,
    /// Cache lines actually drained to NVM by fences.
    pub lines_persisted: u64,
    /// Bytes written into log structures (stores issued inside a
    /// [`log scope`](crate::PmemHandle::begin_log) — UNDO/REDO entry
    /// payloads, shadow register files, recovery markers).
    pub log_bytes: u64,
    global: GlobalCounters,
}

/// The pool-global accumulator half. Each counter sits in its own cache
/// line: sweeps running 64+ simulated threads fold per-handle stats in
/// from many OS threads at once, and unpadded neighbours false-share.
#[derive(Debug, Default)]
struct GlobalCounters {
    loads: CachePadded<AtomicU64>,
    stores: CachePadded<AtomicU64>,
    nt_stores: CachePadded<AtomicU64>,
    clwbs: CachePadded<AtomicU64>,
    fences: CachePadded<AtomicU64>,
    lines_persisted: CachePadded<AtomicU64>,
    log_bytes: CachePadded<AtomicU64>,
}

impl PersistStats {
    /// Folds another counter block into this one's global (atomic) half.
    pub fn merge(&self, other: &PersistStats) {
        let o = other.snapshot();
        self.global.loads.fetch_add(o.loads, Ordering::Relaxed);
        self.global.stores.fetch_add(o.stores, Ordering::Relaxed);
        self.global.nt_stores.fetch_add(o.nt_stores, Ordering::Relaxed);
        self.global.clwbs.fetch_add(o.clwbs, Ordering::Relaxed);
        self.global.fences.fetch_add(o.fences, Ordering::Relaxed);
        self.global.lines_persisted.fetch_add(o.lines_persisted, Ordering::Relaxed);
        self.global.log_bytes.fetch_add(o.log_bytes, Ordering::Relaxed);
    }

    /// A point-in-time copy combining the local and global halves.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            loads: self.loads + self.global.loads.load(Ordering::Relaxed),
            stores: self.stores + self.global.stores.load(Ordering::Relaxed),
            nt_stores: self.nt_stores + self.global.nt_stores.load(Ordering::Relaxed),
            clwbs: self.clwbs + self.global.clwbs.load(Ordering::Relaxed),
            fences: self.fences + self.global.fences.load(Ordering::Relaxed),
            lines_persisted: self.lines_persisted
                + self.global.lines_persisted.load(Ordering::Relaxed),
            log_bytes: self.log_bytes + self.global.log_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of the counters at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Word loads.
    pub loads: u64,
    /// Word stores (cached).
    pub stores: u64,
    /// Non-temporal stores.
    pub nt_stores: u64,
    /// `clwb`/`clflush` issues.
    pub clwbs: u64,
    /// Persist fences executed.
    pub fences: u64,
    /// Cache lines actually drained to NVM by fences.
    pub lines_persisted: u64,
    /// Bytes written into log structures (see [`PersistStats::log_bytes`]).
    pub log_bytes: u64,
}

impl StatsSnapshot {
    /// Total persistence-related events (flush issues + fences + NT stores);
    /// a rough proxy for instrumentation overhead.
    pub fn persistence_events(&self) -> u64 {
        self.clwbs + self.fences + self.nt_stores
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "loads={} stores={} nt={} clwb={} fences={} lines={} logB={}",
            self.loads,
            self.stores,
            self.nt_stores,
            self.clwbs,
            self.fences,
            self.lines_persisted,
            self.log_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let g = PersistStats::default();
        let mut a = PersistStats::default();
        a.loads = 3;
        a.fences = 1;
        a.log_bytes = 64;
        g.merge(&a);
        a.loads = 2;
        g.merge(&a);
        let s = g.snapshot();
        assert_eq!(s.loads, 5);
        assert_eq!(s.fences, 2);
        assert_eq!(s.log_bytes, 128);
    }

    #[test]
    fn display_is_nonempty() {
        let s = StatsSnapshot::default();
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn persistence_events_sum() {
        let s = StatsSnapshot { clwbs: 2, fences: 3, nt_stores: 4, ..Default::default() };
        assert_eq!(s.persistence_events(), 9);
    }
}
