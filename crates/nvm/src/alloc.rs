//! Crash-consistent persistent heap allocator (`nv_malloc` / `nv_free`).
//!
//! Mirrors the allocation facility the paper borrows from Atlas's region
//! manager. All allocator metadata lives in persistent memory, so the
//! allocator state itself survives crashes; metadata updates are ordered
//! with `clwb`+`sfence` such that a crash at any point leaves the heap in a
//! *consistent* state. As in Atlas (and unlike a full Makalu-style
//! recoverable allocator), a crash between reserving a block and publishing
//! it to the application can leak that block — it never corrupts the heap or
//! double-allocates live memory, which is the property the failure-atomicity
//! runtimes rely on.
//!
//! # Layout
//!
//! A block is `[header: u64][payload: size bytes]`. The header stores the
//! payload size with the high bit set while allocated and clear while free.
//! Free blocks store the address of the next free block in their first
//! payload word. Allocation pops a first-fit block from the free list
//! (splitting when the remainder is useful) or bumps the high-water mark.

use std::sync::{Arc, Mutex};

use crate::pool::PmemHandle;
use crate::root::{ALLOC_META_ADDR, HEAP_START};
use crate::{NvmError, PAddr};

const ALLOCATED_BIT: u64 = 1 << 63;
const HEADER_BYTES: usize = 8;
/// Minimum payload so a freed block can hold a free-list link.
const MIN_PAYLOAD: usize = 8;

const BUMP_ADDR: PAddr = ALLOC_META_ADDR;
const FREE_HEAD_ADDR: PAddr = ALLOC_META_ADDR + 8;
const HEAP_END_ADDR: PAddr = ALLOC_META_ADDR + 16;

/// Persistent first-fit free-list allocator.
///
/// The struct itself is only a transient serialization guard (a mutex); all
/// allocator state is in the pool. Clone it freely across threads.
#[derive(Debug, Clone)]
pub struct NvAllocator {
    guard: Arc<Mutex<()>>,
}

impl NvAllocator {
    /// Initializes allocator metadata in a freshly formatted pool. The heap
    /// spans `[HEAP_START, heap_end)`.
    pub fn format(h: &mut PmemHandle, heap_end: PAddr) -> Self {
        assert!(heap_end > HEAP_START, "heap must be non-empty");
        h.write_u64(BUMP_ADDR, HEAP_START as u64);
        h.write_u64(FREE_HEAD_ADDR, 0);
        h.write_u64(HEAP_END_ADDR, heap_end as u64);
        h.persist(ALLOC_META_ADDR, 24);
        NvAllocator { guard: Arc::new(Mutex::new(())) }
    }

    /// Re-attaches to allocator metadata after a crash or restart.
    pub fn attach() -> Self {
        NvAllocator { guard: Arc::new(Mutex::new(())) }
    }

    /// Allocates `size` bytes of persistent memory, returning the payload
    /// address (always 8-byte aligned).
    ///
    /// # Errors
    /// Returns [`NvmError::OutOfMemory`] when neither the free list nor the
    /// bump region can satisfy the request.
    pub fn alloc(&self, h: &mut PmemHandle, size: usize) -> Result<PAddr, NvmError> {
        let _g = self.guard.lock().expect("allocator mutex poisoned");
        let need = size.max(MIN_PAYLOAD).next_multiple_of(8);

        // First-fit scan of the free list.
        let mut prev: PAddr = 0;
        let mut cur = h.read_u64(FREE_HEAD_ADDR) as PAddr;
        while cur != 0 {
            let header = h.read_u64(cur - HEADER_BYTES);
            debug_assert_eq!(header & ALLOCATED_BIT, 0, "free list holds allocated block");
            let block_size = header as usize;
            let next = h.read_u64(cur) as PAddr;
            if block_size >= need {
                // Unlink. Persist the link update before flipping the header
                // so a crash never leaves an allocated block on the list.
                if prev == 0 {
                    h.write_u64(FREE_HEAD_ADDR, next as u64);
                    h.persist(FREE_HEAD_ADDR, 8);
                } else {
                    h.write_u64(prev, next as u64);
                    h.persist(prev, 8);
                }
                let remainder = block_size - need;
                if remainder >= HEADER_BYTES + MIN_PAYLOAD {
                    // Split: publish the tail as a new free block first.
                    let tail_payload = cur + need + HEADER_BYTES;
                    self.push_free(h, tail_payload, remainder - HEADER_BYTES);
                    h.write_u64(cur - HEADER_BYTES, need as u64 | ALLOCATED_BIT);
                } else {
                    h.write_u64(cur - HEADER_BYTES, block_size as u64 | ALLOCATED_BIT);
                }
                h.persist(cur - HEADER_BYTES, 8);
                return Ok(cur);
            }
            prev = cur;
            cur = next;
        }

        // Bump allocation.
        let bump = h.read_u64(BUMP_ADDR) as PAddr;
        let heap_end = h.read_u64(HEAP_END_ADDR) as PAddr;
        let payload = bump + HEADER_BYTES;
        let new_bump = payload + need;
        if new_bump > heap_end {
            return Err(NvmError::OutOfMemory { requested: size });
        }
        // Header first, bump second: a crash in between rolls the reservation
        // back (the stale bump re-covers the block), never corrupting state.
        h.write_u64(bump, need as u64 | ALLOCATED_BIT);
        h.persist(bump, 8);
        h.write_u64(BUMP_ADDR, new_bump as u64);
        h.persist(BUMP_ADDR, 8);
        Ok(payload)
    }

    /// Returns the payload size recorded for the allocation at `addr`.
    ///
    /// # Errors
    /// Returns [`NvmError::InvalidFree`] if `addr` is not a live allocation.
    pub fn size_of(&self, h: &mut PmemHandle, addr: PAddr) -> Result<usize, NvmError> {
        if addr < HEAP_START + HEADER_BYTES || !addr.is_multiple_of(8) {
            return Err(NvmError::InvalidFree { addr });
        }
        let header = h.read_u64(addr - HEADER_BYTES);
        if header & ALLOCATED_BIT == 0 || header == 0 {
            return Err(NvmError::InvalidFree { addr });
        }
        Ok((header & !ALLOCATED_BIT) as usize)
    }

    /// Frees the allocation at payload address `addr`, pushing it onto the
    /// persistent free list.
    ///
    /// # Errors
    /// Returns [`NvmError::InvalidFree`] if `addr` is not a live allocation.
    pub fn free(&self, h: &mut PmemHandle, addr: PAddr) -> Result<(), NvmError> {
        let _g = self.guard.lock().expect("allocator mutex poisoned");
        let size = self.size_of_unlocked(h, addr)?;
        self.push_free(h, addr, size);
        Ok(())
    }

    fn size_of_unlocked(&self, h: &mut PmemHandle, addr: PAddr) -> Result<usize, NvmError> {
        if addr < HEAP_START + HEADER_BYTES || !addr.is_multiple_of(8) {
            return Err(NvmError::InvalidFree { addr });
        }
        let header = h.read_u64(addr - HEADER_BYTES);
        if header & ALLOCATED_BIT == 0 || header == 0 {
            return Err(NvmError::InvalidFree { addr });
        }
        Ok((header & !ALLOCATED_BIT) as usize)
    }

    /// Links a block (payload `addr`, payload `size`) into the free list with
    /// crash-safe ordering: link word, then header, then head pointer.
    fn push_free(&self, h: &mut PmemHandle, addr: PAddr, size: usize) {
        let head = h.read_u64(FREE_HEAD_ADDR);
        h.write_u64(addr, head);
        h.persist(addr, 8);
        h.write_u64(addr - HEADER_BYTES, size as u64); // clears ALLOCATED_BIT
        h.persist(addr - HEADER_BYTES, 8);
        h.write_u64(FREE_HEAD_ADDR, addr as u64);
        h.persist(FREE_HEAD_ADDR, 8);
    }

    /// Bytes consumed by the bump region so far (diagnostics).
    pub fn high_water(&self, h: &mut PmemHandle) -> usize {
        h.read_u64(BUMP_ADDR) as usize - HEAP_START
    }

    /// Number of blocks currently on the free list (diagnostics; O(n)).
    pub fn free_blocks(&self, h: &mut PmemHandle) -> usize {
        let mut n = 0;
        let mut cur = h.read_u64(FREE_HEAD_ADDR) as PAddr;
        while cur != 0 {
            n += 1;
            cur = h.read_u64(cur) as PAddr;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PmemPool, PoolConfig};
    use crate::root::RootTable;

    fn setup() -> (PmemPool, NvAllocator) {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format(&mut h, p.size());
        (p, a)
    }

    #[test]
    fn alloc_returns_aligned_disjoint_blocks() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 24).unwrap();
        let y = a.alloc(&mut h, 24).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 24 + HEADER_BYTES || x >= y + 24 + HEADER_BYTES);
    }

    #[test]
    fn size_is_recorded_and_rounded() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 5).unwrap();
        assert_eq!(a.size_of(&mut h, x).unwrap(), 8);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 32).unwrap();
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 32).unwrap();
        assert_eq!(x, y, "freed block should be reused");
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 128).unwrap();
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 32).unwrap();
        let z = a.alloc(&mut h, 32).unwrap();
        assert_eq!(y, x);
        assert!(z > x && z < x + 128 + HEADER_BYTES, "remainder of split should be reused");
    }

    #[test]
    fn double_free_rejected() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 16).unwrap();
        a.free(&mut h, x).unwrap();
        assert!(matches!(a.free(&mut h, x), Err(NvmError::InvalidFree { .. })));
    }

    #[test]
    fn bogus_free_rejected() {
        let (p, a) = setup();
        let mut h = p.handle();
        assert!(a.free(&mut h, 3).is_err());
        assert!(a.free(&mut h, HEAP_START).is_err());
    }

    #[test]
    fn out_of_memory_reported() {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format(&mut h, HEAP_START + 64);
        assert!(a.alloc(&mut h, 32).is_ok());
        assert!(matches!(a.alloc(&mut h, 64), Err(NvmError::OutOfMemory { .. })));
    }

    #[test]
    fn allocator_state_survives_crash() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 16).unwrap();
        h.write_u64(x, 0xAA);
        h.persist(x, 8);
        drop(h);
        p.crash(0);
        let a = NvAllocator::attach();
        let mut h = p.handle();
        // The old allocation is still accounted for: new blocks don't overlap.
        let y = a.alloc(&mut h, 16).unwrap();
        assert_ne!(x, y);
        assert_eq!(h.read_u64(x), 0xAA);
    }

    #[test]
    fn free_list_survives_crash() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 48).unwrap();
        a.free(&mut h, x).unwrap();
        drop(h);
        p.crash(0);
        let a = NvAllocator::attach();
        let mut h = p.handle();
        assert_eq!(a.free_blocks(&mut h), 1);
        let y = a.alloc(&mut h, 48).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn many_alloc_free_cycles_do_not_grow_heap_unboundedly() {
        let (p, a) = setup();
        let mut h = p.handle();
        let first = a.alloc(&mut h, 64).unwrap();
        a.free(&mut h, first).unwrap();
        let base = a.high_water(&mut h);
        for _ in 0..1000 {
            let x = a.alloc(&mut h, 64).unwrap();
            a.free(&mut h, x).unwrap();
        }
        assert_eq!(a.high_water(&mut h), base, "recycling must not bump the high-water mark");
    }
}
