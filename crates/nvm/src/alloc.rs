//! Crash-consistent persistent heap allocation (`nv_malloc` / `nv_free`).
//!
//! Three allocator policies share one facade, [`NvAllocator`]:
//!
//! * [`AllocPolicy::Legacy`] — the original Atlas-style global free list:
//!   a transient mutex serializes callers, a persistent first-fit list and
//!   bump pointer hold the state. This is the default and stays
//!   byte-identical to the historical behaviour (the trace and decoded
//!   goldens pin its event sequences).
//! * [`AllocPolicy::GlobalDes`] — the same persistent layout, but calls
//!   additionally serialize on a discrete-event availability clock: a
//!   thread whose simulated clock is behind the allocator's last-release
//!   time waits, exactly like the VM's lock handoff model. This is the
//!   honest "global mutex" baseline for the scaling sweeps: with 64
//!   threads allocating, simulated throughput caps at one allocation per
//!   critical-section length.
//! * [`AllocPolicy::Sharded`] — an llfree-style two-level allocator. The
//!   **lower level** is persistent: the small-object heap is carved into
//!   2 KiB chunks, each described by one cache-line descriptor holding a
//!   size-class word and a 256-bit occupancy bitfield. The **upper
//!   level** is volatile and rebuilt on attach: per-shard (per-core)
//!   free-slot caches and active chunks, indexed by the handle's
//!   [`shard id`](crate::PmemHandle::shard), with cross-shard stealing on
//!   local exhaustion and a slow-path fallback to the legacy list for
//!   large blocks. Each shard has its own availability clock, so
//!   same-shard callers serialize but distinct shards proceed in
//!   parallel; only refills, steals, and large blocks touch the global
//!   clock.
//!
//! # Crash consistency
//!
//! All persistent metadata updates are ordered with `clwb`+`sfence` such
//! that a crash at any point leaves the heap *consistent*. As in Atlas
//! (and unlike a full Makalu-style recoverable allocator), a crash
//! between reserving a block and the application publishing it can leak
//! that block — it never corrupts the heap or double-allocates live
//! memory. Concretely, for the sharded lower level:
//!
//! * A chunk's class word is persisted **before** any occupancy bit in it
//!   can be set, so recovery can always interpret the bitfield.
//! * An allocation persists its occupancy bit **before** returning; a
//!   crash before the persist completes rolls the reservation back (the
//!   slot reads free again and the caller never saw the address), a crash
//!   after it leaks at most that one slot.
//! * A free persists the cleared bit before the slot is handed to any
//!   volatile cache; a crash mid-free leaves the bit set — a leak, never
//!   a double-link.
//! * The volatile caches are *hints*: every handout re-checks and sets
//!   the persistent bit under the allocator lock, so a stale hint is
//!   skipped rather than double-allocated. The bitfields are the single
//!   source of truth, which is also what [`NvAllocator::attach_with`]
//!   rebuilds the upper level from.
//!
//! # Layout
//!
//! Legacy/large blocks are `[header: u64][payload]`; the header stores
//! the payload size with the high bit set while allocated. The sharded
//! small-object region sits at the bottom of the heap:
//!
//! ```text
//! HEAP_START:  [magic][n_chunks][n_shards][large_start]  (one line)
//! desc[0..n]:  [class: u64][reserved: 24 B][bitmap: 4 × u64]  (one line each)
//! chunk[0..n]: 2048 B of slots, class-sized
//! large_start: legacy bump + first-fit region for blocks > 512 B
//! ```

use std::sync::{Arc, Mutex};

use crate::pool::PmemHandle;
use crate::root::{ALLOC_META_ADDR, HEAP_START};
use crate::{NvmError, PAddr};
use ido_trace::{EventKind, RecoveryPhase};

const ALLOCATED_BIT: u64 = 1 << 63;
const HEADER_BYTES: usize = 8;
/// Minimum payload so a freed block can hold a free-list link.
const MIN_PAYLOAD: usize = 8;

const BUMP_ADDR: PAddr = ALLOC_META_ADDR;
const FREE_HEAD_ADDR: PAddr = ALLOC_META_ADDR + 8;
const HEAP_END_ADDR: PAddr = ALLOC_META_ADDR + 16;

/// Identifies a sharded-formatted heap (stored at `HEAP_START`; the high
/// bit is clear, so it can never collide with a legacy allocated header).
pub const SHARD_MAGIC: u64 = 0x1D0A_110C_5EED_0001;
/// Bytes per small-object chunk.
pub const CHUNK_BYTES: usize = 2048;
/// Bytes per chunk descriptor (one cache line).
pub const DESC_BYTES: usize = 64;
/// Offset of the occupancy bitfield within a descriptor.
const BITMAP_OFF: usize = 32;
/// Size classes served by the chunked small-object level; larger requests
/// fall back to the legacy list.
pub const CLASS_SIZES: [usize; 7] = [8, 16, 32, 64, 128, 256, 512];
/// Number of size classes.
pub const N_CLASSES: usize = CLASS_SIZES.len();
/// Largest request served by the small-object level.
pub const MAX_SMALL: usize = 512;
/// Upper bound on chunks per pool (keeps attach scans bounded).
const MAX_CHUNKS: usize = 1 << 16;

const META_MAGIC: PAddr = HEAP_START;
const META_NCHUNKS: PAddr = HEAP_START + 8;
const META_NSHARDS: PAddr = HEAP_START + 16;
const META_LARGE_START: PAddr = HEAP_START + 24;
const DESC_BASE: PAddr = HEAP_START + DESC_BYTES;

/// Allocator policy: how [`NvAllocator`] lays out and serializes the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocPolicy {
    /// Historical global free list, no simulated contention cost.
    #[default]
    Legacy,
    /// Global free list serialized on a discrete-event availability clock
    /// (the honest global-mutex baseline for scaling sweeps).
    GlobalDes,
    /// Two-level llfree-style allocator with `shards` per-core upper-level
    /// shards (clamped to ≥ 1).
    Sharded {
        /// Number of upper-level shards; handles map to `shard % shards`.
        shards: usize,
    },
}

fn class_index(need: usize) -> usize {
    CLASS_SIZES.iter().position(|&c| c >= need).expect("need fits a small class")
}

fn slots_per_chunk(k: usize) -> usize {
    (CHUNK_BYTES / CLASS_SIZES[k]).min(256)
}

/// Crash-consistent persistent heap allocator facade.
///
/// The struct itself holds only transient serialization state; all
/// allocator metadata that matters across a crash is in the pool. Clone
/// it freely across threads.
#[derive(Debug, Clone)]
pub struct NvAllocator {
    inner: Inner,
}

#[derive(Debug, Clone)]
enum Inner {
    Legacy { guard: Arc<Mutex<()>> },
    GlobalDes { avail: Arc<Mutex<u64>> },
    Sharded { state: Arc<Mutex<ShardedState>> },
}

/// Volatile upper level of the sharded allocator, rebuilt on attach.
#[derive(Debug)]
struct ShardedState {
    n_chunks: usize,
    chunks_base: PAddr,
    large_start: PAddr,
    shards: Vec<Shard>,
    /// Unformatted chunks (class word zero), popped lowest-address first.
    free_chunks: Vec<u32>,
    /// Formatted chunks believed to hold free slots, per class (hints;
    /// the bitfield is re-checked on every handout).
    partial: [Vec<u32>; N_CLASSES],
    /// DES availability of the global structures (refill, steal, large).
    global_avail: u64,
}

/// One upper-level shard. `avail` is its DES availability clock: callers
/// mapped to this shard serialize on it, callers on other shards don't.
#[derive(Debug, Default)]
struct Shard {
    avail: u64,
    /// Chunk currently being carved per class, with the next slot probe
    /// position (amortizes the bitfield scan to O(1) per allocation).
    active: [Option<u32>; N_CLASSES],
    next_slot: [u32; N_CLASSES],
    /// Freed-slot address cache per class: O(1) reuse of hot sizes.
    cache: [Vec<PAddr>; N_CLASSES],
}

impl NvAllocator {
    /// Initializes legacy allocator metadata in a freshly formatted pool
    /// (equivalent to [`NvAllocator::format_with`] under
    /// [`AllocPolicy::Legacy`]). The heap spans `[HEAP_START, heap_end)`.
    pub fn format(h: &mut PmemHandle, heap_end: PAddr) -> Self {
        Self::format_with(h, heap_end, AllocPolicy::Legacy)
    }

    /// Initializes allocator metadata for `policy` in a freshly formatted
    /// pool. The heap spans `[HEAP_START, heap_end)`.
    pub fn format_with(h: &mut PmemHandle, heap_end: PAddr, policy: AllocPolicy) -> Self {
        assert!(heap_end > HEAP_START, "heap must be non-empty");
        match policy {
            AllocPolicy::Legacy | AllocPolicy::GlobalDes => {
                h.write_u64(BUMP_ADDR, HEAP_START as u64);
                h.write_u64(FREE_HEAD_ADDR, 0);
                h.write_u64(HEAP_END_ADDR, heap_end as u64);
                h.persist(ALLOC_META_ADDR, 24);
                let inner = match policy {
                    AllocPolicy::Legacy => Inner::Legacy { guard: Arc::new(Mutex::new(())) },
                    _ => Inner::GlobalDes { avail: Arc::new(Mutex::new(0)) },
                };
                NvAllocator { inner }
            }
            AllocPolicy::Sharded { shards } => {
                let n_shards = shards.max(1);
                // Budget roughly half the heap for chunks + descriptors;
                // the rest stays with the legacy large-object region.
                let budget = heap_end.saturating_sub(DESC_BASE) / 2;
                let n_chunks = (budget / (DESC_BYTES + CHUNK_BYTES)).min(MAX_CHUNKS);
                let chunks_base = DESC_BASE + n_chunks * DESC_BYTES;
                let large_start = chunks_base + n_chunks * CHUNK_BYTES;
                assert!(
                    large_start + HEADER_BYTES + MIN_PAYLOAD <= heap_end,
                    "heap too small for a sharded format"
                );
                h.write_u64(META_MAGIC, SHARD_MAGIC);
                h.write_u64(META_NCHUNKS, n_chunks as u64);
                h.write_u64(META_NSHARDS, n_shards as u64);
                h.write_u64(META_LARGE_START, large_start as u64);
                h.persist(META_MAGIC, 32);
                // Chunk descriptors rely on the pool's zero initial state:
                // class word 0 = unformatted. The legacy words manage the
                // large region above the chunks.
                h.write_u64(BUMP_ADDR, large_start as u64);
                h.write_u64(FREE_HEAD_ADDR, 0);
                h.write_u64(HEAP_END_ADDR, heap_end as u64);
                h.persist(ALLOC_META_ADDR, 24);
                let state = ShardedState {
                    n_chunks,
                    chunks_base,
                    large_start,
                    shards: (0..n_shards).map(|_| Shard::default()).collect(),
                    free_chunks: (0..n_chunks as u32).rev().collect(),
                    partial: Default::default(),
                    global_avail: 0,
                };
                NvAllocator { inner: Inner::Sharded { state: Arc::new(Mutex::new(state)) } }
            }
        }
    }

    /// Re-attaches to legacy allocator metadata after a crash or restart.
    pub fn attach() -> Self {
        NvAllocator { inner: Inner::Legacy { guard: Arc::new(Mutex::new(())) } }
    }

    /// Re-attaches to allocator metadata after a crash or restart.
    ///
    /// For [`AllocPolicy::Sharded`] this performs the recovery scan: it
    /// reads every chunk descriptor through `h` (charging honest
    /// simulated time) and rebuilds the volatile upper level — free and
    /// partial chunk lists — from the persistent bitfields. Shard caches
    /// restart empty; slots whose free was in flight at the crash stay
    /// marked allocated (leaked, by design).
    ///
    /// # Panics
    /// Panics if `policy` is sharded but the pool was not sharded-formatted.
    pub fn attach_with(h: &mut PmemHandle, policy: AllocPolicy) -> Self {
        match policy {
            AllocPolicy::Legacy => Self::attach(),
            AllocPolicy::GlobalDes => {
                NvAllocator { inner: Inner::GlobalDes { avail: Arc::new(Mutex::new(0)) } }
            }
            AllocPolicy::Sharded { shards } => {
                let rebuild_t0 = h.clock_ns();
                h.trace_event(EventKind::RecoveryBegin, RecoveryPhase::Rebuild as u64, 0);
                let magic = h.read_u64(META_MAGIC);
                assert_eq!(magic, SHARD_MAGIC, "pool is not sharded-formatted");
                let n_chunks = h.read_u64(META_NCHUNKS) as usize;
                assert!(n_chunks <= MAX_CHUNKS, "corrupt chunk count");
                let n_shards = shards.max(1);
                let chunks_base = DESC_BASE + n_chunks * DESC_BYTES;
                let large_start = h.read_u64(META_LARGE_START) as usize;
                assert_eq!(large_start, chunks_base + n_chunks * CHUNK_BYTES, "corrupt layout");
                let mut state = ShardedState {
                    n_chunks,
                    chunks_base,
                    large_start,
                    shards: (0..n_shards).map(|_| Shard::default()).collect(),
                    free_chunks: Vec::new(),
                    partial: Default::default(),
                    global_avail: 0,
                };
                for c in (0..n_chunks).rev() {
                    let desc = DESC_BASE + c * DESC_BYTES;
                    let cw = h.read_u64(desc) as usize;
                    if cw == 0 {
                        state.free_chunks.push(c as u32);
                        continue;
                    }
                    let k = CLASS_SIZES
                        .iter()
                        .position(|&s| s == cw)
                        .unwrap_or_else(|| panic!("corrupt class word {cw} in chunk {c}"));
                    let spc = slots_per_chunk(k);
                    let mut any_free = false;
                    for wi in 0..spc.div_ceil(64) {
                        let w = h.read_u64(desc + BITMAP_OFF + wi * 8);
                        let valid = (spc - wi * 64).min(64);
                        let vmask = if valid == 64 { !0u64 } else { (1u64 << valid) - 1 };
                        if !w & vmask != 0 {
                            any_free = true;
                        }
                    }
                    if any_free {
                        state.partial[k].push(c as u32);
                    }
                }
                let rebuild_t1 = h.clock_ns();
                h.trace_event(
                    EventKind::RecoveryEnd,
                    RecoveryPhase::Rebuild as u64,
                    rebuild_t1 - rebuild_t0,
                );
                h.metrics_recovery(RecoveryPhase::Rebuild, rebuild_t0, rebuild_t1);
                NvAllocator { inner: Inner::Sharded { state: Arc::new(Mutex::new(state)) } }
            }
        }
    }

    /// The policy this allocator instance runs under.
    pub fn policy(&self) -> AllocPolicy {
        match &self.inner {
            Inner::Legacy { .. } => AllocPolicy::Legacy,
            Inner::GlobalDes { .. } => AllocPolicy::GlobalDes,
            Inner::Sharded { state } => {
                AllocPolicy::Sharded { shards: lock(state).shards.len() }
            }
        }
    }

    /// Allocates `size` bytes of persistent memory, returning the payload
    /// address (always 8-byte aligned).
    ///
    /// # Errors
    /// Returns [`NvmError::OutOfMemory`] when no level can satisfy the
    /// request.
    pub fn alloc(&self, h: &mut PmemHandle, size: usize) -> Result<PAddr, NvmError> {
        let need = size.max(MIN_PAYLOAD).next_multiple_of(8);
        match &self.inner {
            Inner::Legacy { guard } => {
                let _g = guard.lock().expect("allocator mutex poisoned");
                list_alloc(h, need, size)
            }
            Inner::GlobalDes { avail } => {
                let mut avail = avail.lock().expect("allocator mutex poisoned");
                des_wait(h, *avail);
                let r = list_alloc(h, need, size);
                *avail = h.clock_ns();
                r
            }
            Inner::Sharded { state } => {
                let mut st = lock(state);
                if st.n_chunks == 0 || need > MAX_SMALL {
                    des_wait(h, st.global_avail);
                    let r = list_alloc(h, need, size);
                    st.global_avail = h.clock_ns();
                    return r;
                }
                let k = class_index(need);
                let s = h.shard() as usize % st.shards.len();
                des_wait(h, st.shards[s].avail);
                let r = st.alloc_small(h, s, k, size);
                st.shards[s].avail = h.clock_ns();
                r
            }
        }
    }

    /// Returns the payload size recorded for the allocation at `addr`.
    ///
    /// # Errors
    /// Returns [`NvmError::InvalidFree`] if `addr` is not a live allocation.
    pub fn size_of(&self, h: &mut PmemHandle, addr: PAddr) -> Result<usize, NvmError> {
        match &self.inner {
            Inner::Legacy { .. } | Inner::GlobalDes { .. } => {
                header_size(h, addr, HEAP_START)
            }
            Inner::Sharded { state } => {
                let st = lock(state);
                if st.in_small_region(addr) {
                    st.small_slot(h, addr).map(|(_, _, _, cw)| cw)
                } else {
                    header_size(h, addr, st.large_start)
                }
            }
        }
    }

    /// Frees the allocation at payload address `addr`.
    ///
    /// # Errors
    /// Returns [`NvmError::InvalidFree`] if `addr` is not a live allocation.
    pub fn free(&self, h: &mut PmemHandle, addr: PAddr) -> Result<(), NvmError> {
        match &self.inner {
            Inner::Legacy { guard } => {
                let _g = guard.lock().expect("allocator mutex poisoned");
                let size = header_size(h, addr, HEAP_START)?;
                push_free(h, addr, size);
                Ok(())
            }
            Inner::GlobalDes { avail } => {
                let mut avail = avail.lock().expect("allocator mutex poisoned");
                des_wait(h, *avail);
                let size = header_size(h, addr, HEAP_START)?;
                push_free(h, addr, size);
                *avail = h.clock_ns();
                Ok(())
            }
            Inner::Sharded { state } => {
                let mut st = lock(state);
                if st.in_small_region(addr) {
                    let s = h.shard() as usize % st.shards.len();
                    des_wait(h, st.shards[s].avail);
                    let r = st.free_small(h, addr, s);
                    st.shards[s].avail = h.clock_ns();
                    r
                } else {
                    des_wait(h, st.global_avail);
                    let size = header_size(h, addr, st.large_start)?;
                    push_free(h, addr, size);
                    st.global_avail = h.clock_ns();
                    Ok(())
                }
            }
        }
    }

    /// Bytes consumed by the bump region so far (diagnostics). For the
    /// sharded policy this covers the large-object region only.
    pub fn high_water(&self, h: &mut PmemHandle) -> usize {
        let floor = match &self.inner {
            Inner::Legacy { .. } | Inner::GlobalDes { .. } => HEAP_START,
            Inner::Sharded { state } => lock(state).large_start,
        };
        h.read_u64(BUMP_ADDR) as usize - floor
    }

    /// Number of blocks on the (large-object) free list (diagnostics; O(n)).
    pub fn free_blocks(&self, h: &mut PmemHandle) -> usize {
        let mut n = 0;
        let mut cur = h.read_u64(FREE_HEAD_ADDR) as PAddr;
        while cur != 0 {
            n += 1;
            cur = h.read_u64(cur) as PAddr;
        }
        n
    }
}

fn lock(state: &Arc<Mutex<ShardedState>>) -> std::sync::MutexGuard<'_, ShardedState> {
    state.lock().expect("allocator mutex poisoned")
}

/// Waits (advancing `h`'s simulated clock) until `avail`: the DES model of
/// blocking on a resource another thread released at time `avail`.
fn des_wait(h: &mut PmemHandle, avail: u64) {
    let wait = avail.saturating_sub(h.clock_ns());
    if wait > 0 {
        h.advance(wait);
    }
}

impl ShardedState {
    fn in_small_region(&self, addr: PAddr) -> bool {
        self.n_chunks > 0 && (self.chunks_base..self.large_start).contains(&addr)
    }

    /// Resolves a small-region address to `(desc, bitmap word addr, bit,
    /// class size)`, validating alignment and that the chunk is formatted.
    fn small_slot(
        &self,
        h: &mut PmemHandle,
        addr: PAddr,
    ) -> Result<(PAddr, PAddr, u64, usize), NvmError> {
        let off = addr - self.chunks_base;
        let chunk = off / CHUNK_BYTES;
        let within = off % CHUNK_BYTES;
        let desc = DESC_BASE + chunk * DESC_BYTES;
        let cw = h.read_u64(desc) as usize;
        let Some(k) = CLASS_SIZES.iter().position(|&s| s == cw) else {
            return Err(NvmError::InvalidFree { addr });
        };
        if within % cw != 0 {
            return Err(NvmError::InvalidFree { addr });
        }
        let slot = within / cw;
        if slot >= slots_per_chunk(k) {
            return Err(NvmError::InvalidFree { addr });
        }
        let wa = desc + BITMAP_OFF + (slot / 64) * 8;
        Ok((desc, wa, 1u64 << (slot % 64), cw))
    }

    /// Claims a cached slot hint: re-checks the persistent bit and sets it.
    /// Returns `false` (hint dropped) if the slot is already taken — the
    /// bitfield is the source of truth, so stale hints can never
    /// double-allocate.
    fn try_claim(&self, h: &mut PmemHandle, addr: PAddr, k: usize) -> bool {
        let off = addr - self.chunks_base;
        let chunk = off / CHUNK_BYTES;
        let slot = (off % CHUNK_BYTES) / CLASS_SIZES[k];
        let wa = DESC_BASE + chunk * DESC_BYTES + BITMAP_OFF + (slot / 64) * 8;
        let bit = 1u64 << (slot % 64);
        let w = h.read_u64(wa);
        if w & bit != 0 {
            return false;
        }
        h.write_u64(wa, w | bit);
        h.persist(wa, 8);
        true
    }

    /// The small-object allocation path for shard `s`, class `k`.
    fn alloc_small(
        &mut self,
        h: &mut PmemHandle,
        s: usize,
        k: usize,
        requested: usize,
    ) -> Result<PAddr, NvmError> {
        loop {
            // Fast path 1: reuse a freed slot from the local cache.
            while let Some(addr) = self.shards[s].cache[k].pop() {
                if self.try_claim(h, addr, k) {
                    return Ok(addr);
                }
            }
            // Fast path 2: carve the next slot from the active chunk.
            if let Some(c) = self.shards[s].active[k] {
                if let Some(addr) = self.scan_chunk(h, c, k, s) {
                    return Ok(addr);
                }
                self.shards[s].active[k] = None;
            }
            // Slow path: refill from the global structures.
            des_wait(h, self.global_avail);
            let refilled = self.refill(h, s, k);
            self.global_avail = h.clock_ns();
            if !refilled {
                // Final fallback: the legacy large-object list. Its
                // leak-never-corrupt property carries the same guarantee.
                return list_alloc(h, CLASS_SIZES[k], requested);
            }
        }
    }

    /// Scans the active chunk's bitfield from the shard's probe position,
    /// claiming the first free slot. O(bitmap words) per call, amortized
    /// O(1) per allocation over the chunk's lifetime.
    fn scan_chunk(&mut self, h: &mut PmemHandle, c: u32, k: usize, s: usize) -> Option<PAddr> {
        let spc = slots_per_chunk(k);
        let size = CLASS_SIZES[k];
        let chunk_base = self.chunks_base + c as usize * CHUNK_BYTES;
        let desc = DESC_BASE + c as usize * DESC_BYTES;
        let mut slot = self.shards[s].next_slot[k] as usize;
        while slot < spc {
            let wi = slot / 64;
            let lo = wi * 64;
            let wa = desc + BITMAP_OFF + wi * 8;
            let w = h.read_u64(wa);
            let valid = (spc - lo).min(64);
            let vmask = if valid == 64 { !0u64 } else { (1u64 << valid) - 1 };
            let free = !w & vmask & !((1u64 << (slot - lo)) - 1);
            if free != 0 {
                let b = free.trailing_zeros() as usize;
                h.write_u64(wa, w | (1u64 << b));
                h.persist(wa, 8);
                self.shards[s].next_slot[k] = (lo + b + 1) as u32;
                return Some(chunk_base + (lo + b) * size);
            }
            slot = lo + 64;
        }
        None
    }

    /// Refills shard `s` for class `k` from the global structures:
    /// a partial chunk, then a fresh chunk, then a steal of half the
    /// richest other shard's cache. Returns `false` when all are empty.
    fn refill(&mut self, h: &mut PmemHandle, s: usize, k: usize) -> bool {
        if let Some(c) = self.partial[k].pop() {
            self.shards[s].active[k] = Some(c);
            self.shards[s].next_slot[k] = 0;
            return true;
        }
        if let Some(c) = self.free_chunks.pop() {
            let desc = DESC_BASE + c as usize * DESC_BYTES;
            // The class word must be durable before any occupancy bit can
            // be set: recovery needs it to interpret the bitfield.
            h.write_u64(desc, CLASS_SIZES[k] as u64);
            h.persist(desc, 8);
            self.shards[s].active[k] = Some(c);
            self.shards[s].next_slot[k] = 0;
            return true;
        }
        // Steal from the richest other shard (ties to the lowest index,
        // keeping the choice deterministic).
        let victim = (0..self.shards.len())
            .filter(|&i| i != s && !self.shards[i].cache[k].is_empty())
            .max_by_key(|&i| (self.shards[i].cache[k].len(), std::cmp::Reverse(i)));
        if let Some(v) = victim {
            // Stealing rummages in the victim's lists: serialize with it.
            des_wait(h, self.shards[v].avail);
            let len = self.shards[v].cache[k].len();
            let moved = self.shards[v].cache[k].split_off(len - len.div_ceil(2));
            self.shards[v].avail = h.clock_ns();
            self.shards[s].cache[k].extend(moved);
            return true;
        }
        false
    }

    /// Frees a small-region slot into shard `s`'s cache.
    fn free_small(&mut self, h: &mut PmemHandle, addr: PAddr, s: usize) -> Result<(), NvmError> {
        let (_, wa, bit, cw) = self.small_slot(h, addr)?;
        let w = h.read_u64(wa);
        if w & bit == 0 {
            return Err(NvmError::InvalidFree { addr });
        }
        // Clear and persist the bit before the slot becomes reusable: a
        // crash here leaks the slot (bit still set) but can never leave it
        // both cached and allocated.
        h.write_u64(wa, w & !bit);
        h.persist(wa, 8);
        self.shards[s].cache[class_index(cw)].push(addr);
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The legacy first-fit list + bump region (also the sharded large path).
// ---------------------------------------------------------------------

/// First-fit allocation from the persistent free list, falling back to the
/// bump pointer. `requested` is only for the error report.
fn list_alloc(h: &mut PmemHandle, need: usize, requested: usize) -> Result<PAddr, NvmError> {
    // First-fit scan of the free list.
    let mut prev: PAddr = 0;
    let mut cur = h.read_u64(FREE_HEAD_ADDR) as PAddr;
    while cur != 0 {
        let header = h.read_u64(cur - HEADER_BYTES);
        debug_assert_eq!(header & ALLOCATED_BIT, 0, "free list holds allocated block");
        let block_size = header as usize;
        let next = h.read_u64(cur) as PAddr;
        if block_size >= need {
            // Unlink. Persist the link update before flipping the header
            // so a crash never leaves an allocated block on the list.
            if prev == 0 {
                h.write_u64(FREE_HEAD_ADDR, next as u64);
                h.persist(FREE_HEAD_ADDR, 8);
            } else {
                h.write_u64(prev, next as u64);
                h.persist(prev, 8);
            }
            let remainder = block_size - need;
            if remainder >= HEADER_BYTES + MIN_PAYLOAD {
                // Split: publish the tail as a new free block first.
                let tail_payload = cur + need + HEADER_BYTES;
                push_free(h, tail_payload, remainder - HEADER_BYTES);
                h.write_u64(cur - HEADER_BYTES, need as u64 | ALLOCATED_BIT);
            } else {
                h.write_u64(cur - HEADER_BYTES, block_size as u64 | ALLOCATED_BIT);
            }
            h.persist(cur - HEADER_BYTES, 8);
            return Ok(cur);
        }
        prev = cur;
        cur = next;
    }

    // Bump allocation.
    let bump = h.read_u64(BUMP_ADDR) as PAddr;
    let heap_end = h.read_u64(HEAP_END_ADDR) as PAddr;
    let payload = bump + HEADER_BYTES;
    let new_bump = payload + need;
    if new_bump > heap_end {
        return Err(NvmError::OutOfMemory { requested });
    }
    // Header first, bump second: a crash in between rolls the reservation
    // back (the stale bump re-covers the block), never corrupting state.
    h.write_u64(bump, need as u64 | ALLOCATED_BIT);
    h.persist(bump, 8);
    h.write_u64(BUMP_ADDR, new_bump as u64);
    h.persist(BUMP_ADDR, 8);
    Ok(payload)
}

/// Reads and validates a `[header][payload]` block's payload size.
/// `floor` is the lowest address the containing region can start at.
fn header_size(h: &mut PmemHandle, addr: PAddr, floor: PAddr) -> Result<usize, NvmError> {
    if addr < floor + HEADER_BYTES || !addr.is_multiple_of(8) {
        return Err(NvmError::InvalidFree { addr });
    }
    let header = h.read_u64(addr - HEADER_BYTES);
    if header & ALLOCATED_BIT == 0 || header == 0 {
        return Err(NvmError::InvalidFree { addr });
    }
    Ok((header & !ALLOCATED_BIT) as usize)
}

/// Links a block (payload `addr`, payload `size`) into the free list with
/// crash-safe ordering: link word, then header, then head pointer.
fn push_free(h: &mut PmemHandle, addr: PAddr, size: usize) {
    let head = h.read_u64(FREE_HEAD_ADDR);
    h.write_u64(addr, head);
    h.persist(addr, 8);
    h.write_u64(addr - HEADER_BYTES, size as u64); // clears ALLOCATED_BIT
    h.persist(addr - HEADER_BYTES, 8);
    h.write_u64(FREE_HEAD_ADDR, addr as u64);
    h.persist(FREE_HEAD_ADDR, 8);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PmemPool, PoolConfig};
    use crate::root::RootTable;

    fn setup() -> (PmemPool, NvAllocator) {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format(&mut h, p.size());
        (p, a)
    }

    fn setup_sharded(shards: usize) -> (PmemPool, NvAllocator) {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format_with(&mut h, p.size(), AllocPolicy::Sharded { shards });
        (p, a)
    }

    #[test]
    fn alloc_returns_aligned_disjoint_blocks() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 24).unwrap();
        let y = a.alloc(&mut h, 24).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 24 + HEADER_BYTES || x >= y + 24 + HEADER_BYTES);
    }

    #[test]
    fn size_is_recorded_and_rounded() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 5).unwrap();
        assert_eq!(a.size_of(&mut h, x).unwrap(), 8);
    }

    #[test]
    fn free_then_alloc_reuses_block() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 32).unwrap();
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 32).unwrap();
        assert_eq!(x, y, "freed block should be reused");
    }

    #[test]
    fn split_leaves_usable_remainder() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 128).unwrap();
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 32).unwrap();
        let z = a.alloc(&mut h, 32).unwrap();
        assert_eq!(y, x);
        assert!(z > x && z < x + 128 + HEADER_BYTES, "remainder of split should be reused");
    }

    #[test]
    fn double_free_rejected() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 16).unwrap();
        a.free(&mut h, x).unwrap();
        assert!(matches!(a.free(&mut h, x), Err(NvmError::InvalidFree { .. })));
    }

    #[test]
    fn bogus_free_rejected() {
        let (p, a) = setup();
        let mut h = p.handle();
        assert!(a.free(&mut h, 3).is_err());
        assert!(a.free(&mut h, HEAP_START).is_err());
    }

    #[test]
    fn out_of_memory_reported() {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format(&mut h, HEAP_START + 64);
        assert!(a.alloc(&mut h, 32).is_ok());
        assert!(matches!(a.alloc(&mut h, 64), Err(NvmError::OutOfMemory { .. })));
    }

    #[test]
    fn allocator_state_survives_crash() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 16).unwrap();
        h.write_u64(x, 0xAA);
        h.persist(x, 8);
        drop(h);
        p.crash(0);
        let a = NvAllocator::attach();
        let mut h = p.handle();
        // The old allocation is still accounted for: new blocks don't overlap.
        let y = a.alloc(&mut h, 16).unwrap();
        assert_ne!(x, y);
        assert_eq!(h.read_u64(x), 0xAA);
    }

    #[test]
    fn free_list_survives_crash() {
        let (p, a) = setup();
        let mut h = p.handle();
        let x = a.alloc(&mut h, 48).unwrap();
        a.free(&mut h, x).unwrap();
        drop(h);
        p.crash(0);
        let a = NvAllocator::attach();
        let mut h = p.handle();
        assert_eq!(a.free_blocks(&mut h), 1);
        let y = a.alloc(&mut h, 48).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn many_alloc_free_cycles_do_not_grow_heap_unboundedly() {
        let (p, a) = setup();
        let mut h = p.handle();
        let first = a.alloc(&mut h, 64).unwrap();
        a.free(&mut h, first).unwrap();
        let base = a.high_water(&mut h);
        for _ in 0..1000 {
            let x = a.alloc(&mut h, 64).unwrap();
            a.free(&mut h, x).unwrap();
        }
        assert_eq!(a.high_water(&mut h), base, "recycling must not bump the high-water mark");
    }

    // ------------------------------------------------------------------
    // Sharded policy
    // ------------------------------------------------------------------

    #[test]
    fn sharded_small_allocs_are_aligned_and_disjoint() {
        let (p, a) = setup_sharded(4);
        let mut h = p.handle();
        let mut blocks = Vec::new();
        for size in [1usize, 8, 9, 24, 64, 100, 500, 512] {
            let x = a.alloc(&mut h, size).unwrap();
            assert_eq!(x % 8, 0, "unaligned block for size {size}");
            let rounded = a.size_of(&mut h, x).unwrap();
            assert!(rounded >= size);
            blocks.push((x, rounded));
        }
        for (i, &(x, xs)) in blocks.iter().enumerate() {
            for &(y, ys) in &blocks[i + 1..] {
                assert!(x + xs <= y || y + ys <= x, "blocks overlap: {x:#x} and {y:#x}");
            }
        }
    }

    #[test]
    fn sharded_free_then_alloc_reuses_slot() {
        let (p, a) = setup_sharded(2);
        let mut h = p.handle();
        let x = a.alloc(&mut h, 32).unwrap();
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 32).unwrap();
        assert_eq!(x, y, "same-shard free feeds the cache");
    }

    #[test]
    fn sharded_double_and_bogus_free_rejected() {
        let (p, a) = setup_sharded(2);
        let mut h = p.handle();
        let x = a.alloc(&mut h, 16).unwrap();
        a.free(&mut h, x).unwrap();
        assert!(matches!(a.free(&mut h, x), Err(NvmError::InvalidFree { .. })));
        assert!(a.free(&mut h, x + 4).is_err(), "misaligned");
        assert!(a.free(&mut h, 3).is_err());
        let y = a.alloc(&mut h, 16).unwrap();
        assert!(a.free(&mut h, y + 16).is_err(), "wrong slot boundary");
    }

    #[test]
    fn sharded_shards_carve_distinct_chunks() {
        let (p, a) = setup_sharded(2);
        let mut h0 = p.handle();
        let mut h1 = p.handle();
        h1.set_shard(1);
        let x = a.alloc(&mut h0, 64).unwrap();
        let y = a.alloc(&mut h1, 64).unwrap();
        assert_ne!(
            (x - (x % CHUNK_BYTES)),
            (y - (y % CHUNK_BYTES)),
            "different shards must carve different chunks"
        );
    }

    #[test]
    fn sharded_cross_shard_free_and_steal() {
        let (p, a) = setup_sharded(2);
        let mut h0 = p.handle();
        let mut h1 = p.handle();
        h1.set_shard(1);
        // Shard 0 allocates, shard 1 frees: slots land in shard 1's cache.
        let blocks: Vec<_> = (0..8).map(|_| a.alloc(&mut h0, 48).unwrap()).collect();
        for &b in &blocks {
            a.free(&mut h1, b).unwrap();
        }
        // Re-allocating from shard 1 drains its cache (same addresses).
        let again = a.alloc(&mut h1, 48).unwrap();
        assert!(blocks.contains(&again), "freed slot must be reused via the cache");
        for _ in 0..7 {
            a.alloc(&mut h1, 48).unwrap();
        }
    }

    #[test]
    fn sharded_large_blocks_fall_back_to_list() {
        let (p, a) = setup_sharded(2);
        let mut h = p.handle();
        let x = a.alloc(&mut h, 4096).unwrap();
        assert_eq!(a.size_of(&mut h, x).unwrap(), 4096);
        a.free(&mut h, x).unwrap();
        let y = a.alloc(&mut h, 4096).unwrap();
        assert_eq!(x, y, "large blocks recycle through the legacy list");
        assert!(a.free_blocks(&mut h) <= 1);
    }

    #[test]
    fn sharded_survives_crash_and_reattach() {
        let (p, a) = setup_sharded(2);
        let mut h = p.handle();
        let x = a.alloc(&mut h, 64).unwrap();
        let dead = a.alloc(&mut h, 64).unwrap();
        a.free(&mut h, dead).unwrap();
        h.write_u64(x, 0xBEEF);
        h.persist(x, 8);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        let a = NvAllocator::attach_with(&mut h, AllocPolicy::Sharded { shards: 2 });
        assert_eq!(h.read_u64(x), 0xBEEF);
        // The live slot stays allocated — new allocations never return it —
        // while the durably freed slot is findable via the partial-chunk scan.
        let mut found_dead = false;
        for _ in 0..40 {
            let y = a.alloc(&mut h, 64).unwrap();
            assert_ne!(x, y, "live slot double-allocated after recovery");
            found_dead |= y == dead;
        }
        assert!(found_dead, "durably freed slot must be recovered as free");
    }

    #[test]
    fn sharded_exhaustion_falls_back_then_reports_oom() {
        let p = PmemPool::new(PoolConfig { size: 64 << 10, ..PoolConfig::small_for_tests() });
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format_with(&mut h, p.size(), AllocPolicy::Sharded { shards: 1 });
        let mut n = 0u32;
        loop {
            match a.alloc(&mut h, 512) {
                Ok(_) => n += 1,
                Err(NvmError::OutOfMemory { .. }) => break,
                Err(e) => panic!("unexpected error: {e:?}"),
            }
            assert!(n < 10_000, "tiny pool must exhaust");
        }
        assert!(n > 10, "should have carved chunks and the large region first");
    }

    #[test]
    fn sharded_des_serializes_same_shard_but_not_cross_shard() {
        // Needs the real latency model: contention is invisible at zero cost.
        let p = PmemPool::new(PoolConfig {
            size: 1 << 20,
            trace: PoolConfig::small_for_tests().trace,
            ..PoolConfig::default()
        });
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format_with(&mut h, p.size(), AllocPolicy::Sharded { shards: 2 });
        drop(h);
        // Same shard: the second caller's clock is pushed past the first's.
        let mut h0 = p.handle();
        let mut h1 = p.handle();
        a.alloc(&mut h0, 64).unwrap();
        let t0 = h0.clock_ns();
        assert!(t0 > 0, "default-latency ops must consume simulated time");
        a.alloc(&mut h1, 64).unwrap();
        assert!(h1.clock_ns() >= t0, "same-shard allocs serialize on the DES clock");
        // Cross shard: a fresh handle on the other shard does not wait for
        // shard 0 (its clock stays below shard 0's availability).
        let mut h2 = p.handle();
        h2.set_shard(1);
        a.alloc(&mut h2, 64).unwrap();
        assert!(
            h2.clock_ns() < h1.clock_ns(),
            "cross-shard alloc must not serialize behind the busy shard"
        );
    }

    #[test]
    fn global_des_serializes_every_call() {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        let a = NvAllocator::format_with(&mut h, p.size(), AllocPolicy::GlobalDes);
        let mut h0 = p.handle();
        let mut h1 = p.handle();
        a.alloc(&mut h0, 64).unwrap();
        a.alloc(&mut h1, 64).unwrap();
        assert!(h1.clock_ns() >= h0.clock_ns(), "global DES serializes all callers");
    }

    #[test]
    fn policy_is_reported() {
        let (_p, a) = setup();
        assert_eq!(a.policy(), AllocPolicy::Legacy);
        let (_p, a) = setup_sharded(3);
        assert_eq!(a.policy(), AllocPolicy::Sharded { shards: 3 });
    }
}
