//! Configurable latency model for persistence operations.
//!
//! The paper emulates NVM on DRAM: `clflush` + `sfence` approximate the cost
//! of persisting on an ADR machine, and Section V-E adds a configurable extra
//! delay after each flush to model slower NVM write paths (20–2000 ns). This
//! module reproduces that cost structure as *simulated nanoseconds* charged to
//! a per-thread clock, with an optional mode that additionally spins for the
//! same duration in real time (for wall-clock Criterion benchmarks).

use std::time::Instant;

/// How latency charges are realized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmulationMode {
    /// Only advance the simulated clock (deterministic; used by the DES
    /// throughput harness and by all tests).
    #[default]
    Simulated,
    /// Advance the simulated clock *and* busy-wait for the same duration,
    /// mimicking the paper's nop-loop delay injection for real-time runs.
    SpinRealTime,
}

/// Latency parameters, in nanoseconds, for each memory/persistence primitive.
///
/// Defaults approximate the paper's testbed assumptions: NVM read/write
/// latency similar to DRAM, a `clwb`+`sfence` round trip to the memory
/// controller on the order of 100 ns, and zero extra NVM delay (the Fig. 9
/// sweep raises [`LatencyModel::nvm_extra_delay_ns`] from 20 to 2000).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Cost of an ordinary cached load.
    pub load_ns: u64,
    /// Cost of an ordinary cached store.
    pub store_ns: u64,
    /// Cost of issuing a `clwb`/`clflush` (the issue itself is cheap; the
    /// wait is paid at the next fence).
    pub clwb_issue_ns: u64,
    /// Fixed cost of an `sfence` with no pending write-backs.
    pub sfence_base_ns: u64,
    /// Round-trip cost, per pending flushed line, paid when an `sfence`
    /// drains the write-back queue.
    pub flush_roundtrip_ns: u64,
    /// Extra delay per flushed line (and per non-temporal store) modelling
    /// slow NVM media or a long data path; the Fig. 9 sensitivity knob.
    pub nvm_extra_delay_ns: u64,
    /// How charges are realized.
    pub mode: EmulationMode,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            load_ns: 1,
            store_ns: 1,
            clwb_issue_ns: 5,
            sfence_base_ns: 15,
            flush_roundtrip_ns: 100,
            nvm_extra_delay_ns: 0,
            mode: EmulationMode::Simulated,
        }
    }
}

impl LatencyModel {
    /// A model with every cost set to zero (useful in unit tests that only
    /// care about crash semantics).
    pub fn zero() -> Self {
        Self {
            load_ns: 0,
            store_ns: 0,
            clwb_issue_ns: 0,
            sfence_base_ns: 0,
            flush_roundtrip_ns: 0,
            nvm_extra_delay_ns: 0,
            mode: EmulationMode::Simulated,
        }
    }

    /// Returns the default model with the Fig. 9 extra-NVM-delay knob set.
    pub fn with_nvm_delay(delay_ns: u64) -> Self {
        Self { nvm_extra_delay_ns: delay_ns, ..Self::default() }
    }

    /// Cost of draining `pending` queued write-backs at a fence.
    ///
    /// Write-backs issued before the fence drain largely in parallel: the
    /// fence pays one full round trip to the memory controller plus a small
    /// serialization overhead (a quarter round trip) for each additional
    /// line. The extra NVM delay, by contrast, is charged **per line** —
    /// this mirrors the paper's Section V-E methodology of inserting a nop
    /// delay after *each* `clflush`, and is why stores-per-fence-heavy
    /// schemes (JUSTDO's shadowing) are the most latency-sensitive.
    #[inline]
    pub fn fence_cost(&self, pending: u64) -> u64 {
        let drain = if pending == 0 {
            0
        } else {
            self.flush_roundtrip_ns + (pending - 1) * (self.flush_roundtrip_ns / 4)
        };
        self.sfence_base_ns + drain + pending * self.nvm_extra_delay_ns
    }

    /// Cost of a non-temporal (write-combining, cache-bypassing) store.
    #[inline]
    pub fn nt_store_cost(&self) -> u64 {
        self.store_ns + self.nvm_extra_delay_ns
    }

    /// Realize a charge of `ns`: spin in real time if the mode requires it.
    #[inline]
    pub(crate) fn realize(&self, ns: u64) {
        if self.mode == EmulationMode::SpinRealTime && ns > 0 {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_dram_like_accesses() {
        let m = LatencyModel::default();
        assert!(m.load_ns <= 2);
        assert!(m.store_ns <= 2);
        assert!(m.flush_roundtrip_ns >= 50);
    }

    #[test]
    fn fence_cost_overlaps_drains_but_grows_with_pending() {
        let m = LatencyModel::default();
        let one = m.fence_cost(1);
        let four = m.fence_cost(4);
        assert!(four > one, "more pending lines cost more");
        assert!(
            four - one < 3 * m.flush_roundtrip_ns,
            "concurrent drains cost less than serial round trips"
        );
        assert_eq!(four - one, 3 * (m.flush_roundtrip_ns / 4));
    }

    #[test]
    fn nvm_delay_is_charged_per_line() {
        let base = LatencyModel::default();
        let slow = LatencyModel::with_nvm_delay(500);
        assert_eq!(slow.fence_cost(2) - base.fence_cost(2), 1000);
        assert_eq!(slow.nt_store_cost() - base.nt_store_cost(), 500);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = LatencyModel::zero();
        assert_eq!(m.fence_cost(100), 0);
        assert_eq!(m.nt_store_cost(), 0);
    }

    #[test]
    fn spin_mode_actually_waits() {
        let m = LatencyModel { mode: EmulationMode::SpinRealTime, ..LatencyModel::default() };
        let start = Instant::now();
        m.realize(200_000); // 200 us
        assert!(start.elapsed().as_nanos() >= 200_000);
    }
}
