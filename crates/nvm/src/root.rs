//! Atlas-style persistent region management: pool header and named roots.
//!
//! The iDO paper reuses Atlas's region manager, which exposes persistent
//! memory regions as mappable files with named root objects from which all
//! live persistent data is reachable. Our simulated equivalent reserves the
//! first few cache lines of the pool for a header (magic number, generation
//! counter, clean-shutdown flag) and a fixed-size table of `(name hash,
//! address)` root slots. A recovery process re-attaches, validates the magic
//! number, and looks up its data structures by name.

use crate::pool::PmemHandle;
use crate::{NvmError, PAddr};

/// Pool-format magic number ("iDO!NVM!" little-endian-ish).
pub const MAGIC: u64 = 0x69444F21_4E564D21;

/// Address of the header line.
pub const HEADER_ADDR: PAddr = 0;
const MAGIC_ADDR: PAddr = 0;
const GENERATION_ADDR: PAddr = 8;
const CLEAN_SHUTDOWN_ADDR: PAddr = 16;

/// Address of the first root slot.
pub const ROOT_TABLE_ADDR: PAddr = 64;
/// Number of named root slots.
pub const N_ROOTS: usize = 64;
const ROOT_SLOT_BYTES: usize = 16;

/// Address of the allocator metadata line.
pub const ALLOC_META_ADDR: PAddr = ROOT_TABLE_ADDR + N_ROOTS * ROOT_SLOT_BYTES;

/// First address available to the persistent heap allocator.
pub const HEAP_START: PAddr = ALLOC_META_ADDR + 64;

/// FNV-1a hash of a root name. Zero is reserved for "empty slot", so the
/// hash is nudged to 1 if it would be 0.
pub fn name_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    if h == 0 {
        1
    } else {
        h
    }
}

/// View over the pool's header and root table.
///
/// `RootTable` holds no state of its own; all state lives in persistent
/// memory, so it works identically before and after a crash.
#[derive(Debug, Clone, Copy, Default)]
pub struct RootTable;

impl RootTable {
    /// Formats a fresh pool: writes the magic number, zeroes the root table,
    /// and persists everything. Destroys any prior contents.
    pub fn format(h: &mut PmemHandle) -> Self {
        for i in 0..N_ROOTS {
            let slot = ROOT_TABLE_ADDR + i * ROOT_SLOT_BYTES;
            h.write_u64(slot, 0);
            h.write_u64(slot + 8, 0);
        }
        h.write_u64(GENERATION_ADDR, 0);
        h.write_u64(CLEAN_SHUTDOWN_ADDR, 1);
        h.write_u64(MAGIC_ADDR, MAGIC);
        h.persist(HEADER_ADDR, HEAP_START);
        RootTable
    }

    /// Re-attaches to a previously formatted pool (e.g. after a crash).
    ///
    /// # Errors
    /// Returns [`NvmError::CorruptHeader`] if the magic number is absent.
    pub fn attach(h: &mut PmemHandle) -> Result<Self, NvmError> {
        if h.read_u64(MAGIC_ADDR) != MAGIC {
            return Err(NvmError::CorruptHeader { detail: "missing magic number".into() });
        }
        Ok(RootTable)
    }

    /// True if the previous detach was clean (no crash since).
    pub fn was_clean_shutdown(&self, h: &mut PmemHandle) -> bool {
        h.read_u64(CLEAN_SHUTDOWN_ADDR) == 1
    }

    /// Marks the pool as in-use; a crash before [`RootTable::mark_clean`]
    /// will then be detectable on re-attach.
    pub fn mark_in_use(&self, h: &mut PmemHandle) {
        h.write_u64(CLEAN_SHUTDOWN_ADDR, 0);
        let gen = h.read_u64(GENERATION_ADDR);
        h.write_u64(GENERATION_ADDR, gen + 1);
        h.persist(HEADER_ADDR, 64);
    }

    /// Marks a clean shutdown.
    pub fn mark_clean(&self, h: &mut PmemHandle) {
        h.write_u64(CLEAN_SHUTDOWN_ADDR, 1);
        h.persist(HEADER_ADDR, 64);
    }

    /// Generation counter (bumped on every `mark_in_use`).
    pub fn generation(&self, h: &mut PmemHandle) -> u64 {
        h.read_u64(GENERATION_ADDR)
    }

    /// Durably associates `name` with `addr`, overwriting a prior binding.
    ///
    /// # Errors
    /// Returns [`NvmError::RootTableFull`] if all slots hold other names.
    pub fn set_root(&self, h: &mut PmemHandle, name: &str, addr: PAddr) -> Result<(), NvmError> {
        let hash = name_hash(name);
        let mut empty = None;
        for i in 0..N_ROOTS {
            let slot = ROOT_TABLE_ADDR + i * ROOT_SLOT_BYTES;
            let slot_hash = h.read_u64(slot);
            if slot_hash == hash {
                h.write_u64(slot + 8, addr as u64);
                h.persist(slot, ROOT_SLOT_BYTES);
                return Ok(());
            }
            if slot_hash == 0 && empty.is_none() {
                empty = Some(slot);
            }
        }
        let slot = empty.ok_or(NvmError::RootTableFull)?;
        // Write the address first, then the hash that makes the slot live,
        // so a crash can never expose a live slot with a garbage address.
        h.write_u64(slot + 8, addr as u64);
        h.persist(slot + 8, 8);
        h.write_u64(slot, hash);
        h.persist(slot, 8);
        Ok(())
    }

    /// Looks up the address bound to `name`.
    pub fn root(&self, h: &mut PmemHandle, name: &str) -> Option<PAddr> {
        let hash = name_hash(name);
        for i in 0..N_ROOTS {
            let slot = ROOT_TABLE_ADDR + i * ROOT_SLOT_BYTES;
            if h.read_u64(slot) == hash {
                return Some(h.read_u64(slot + 8) as PAddr);
            }
        }
        None
    }

    /// Removes the binding for `name`, if present.
    pub fn remove_root(&self, h: &mut PmemHandle, name: &str) {
        let hash = name_hash(name);
        for i in 0..N_ROOTS {
            let slot = ROOT_TABLE_ADDR + i * ROOT_SLOT_BYTES;
            if h.read_u64(slot) == hash {
                h.write_u64(slot, 0);
                h.persist(slot, 8);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{PmemPool, PoolConfig};

    fn formatted() -> PmemPool {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        RootTable::format(&mut h);
        p
    }

    #[test]
    fn format_then_attach() {
        let p = formatted();
        let mut h = p.handle();
        assert!(RootTable::attach(&mut h).is_ok());
    }

    #[test]
    fn attach_unformatted_fails() {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        assert!(matches!(RootTable::attach(&mut h), Err(NvmError::CorruptHeader { .. })));
    }

    #[test]
    fn roots_survive_crash() {
        let p = formatted();
        let mut h = p.handle();
        let rt = RootTable::attach(&mut h).unwrap();
        rt.set_root(&mut h, "stack", 4096).unwrap();
        rt.set_root(&mut h, "queue", 8192).unwrap();
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        let rt = RootTable::attach(&mut h).unwrap();
        assert_eq!(rt.root(&mut h, "stack"), Some(4096));
        assert_eq!(rt.root(&mut h, "queue"), Some(8192));
        assert_eq!(rt.root(&mut h, "absent"), None);
    }

    #[test]
    fn set_root_overwrites_existing() {
        let p = formatted();
        let mut h = p.handle();
        let rt = RootTable;
        rt.set_root(&mut h, "a", 100).unwrap();
        rt.set_root(&mut h, "a", 200).unwrap();
        assert_eq!(rt.root(&mut h, "a"), Some(200));
    }

    #[test]
    fn remove_root_clears_binding() {
        let p = formatted();
        let mut h = p.handle();
        let rt = RootTable;
        rt.set_root(&mut h, "a", 100).unwrap();
        rt.remove_root(&mut h, "a");
        assert_eq!(rt.root(&mut h, "a"), None);
    }

    #[test]
    fn table_fills_up() {
        let p = formatted();
        let mut h = p.handle();
        let rt = RootTable;
        for i in 0..N_ROOTS {
            rt.set_root(&mut h, &format!("root{i}"), i * 8).unwrap();
        }
        assert!(matches!(rt.set_root(&mut h, "overflow", 1), Err(NvmError::RootTableFull)));
    }

    #[test]
    fn crash_detection_via_clean_flag() {
        let p = formatted();
        let mut h = p.handle();
        let rt = RootTable;
        assert!(rt.was_clean_shutdown(&mut h));
        rt.mark_in_use(&mut h);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        let rt = RootTable::attach(&mut h).unwrap();
        assert!(!rt.was_clean_shutdown(&mut h), "crash must be detectable");
        assert_eq!(rt.generation(&mut h), 1);
        rt.mark_clean(&mut h);
        assert!(rt.was_clean_shutdown(&mut h));
    }

    #[test]
    fn name_hash_never_zero_and_stable() {
        assert_ne!(name_hash(""), 0);
        assert_eq!(name_hash("abc"), name_hash("abc"));
        assert_ne!(name_hash("abc"), name_hash("abd"));
    }
}
