//! Property-based tests of the NVM substrate: allocator safety under
//! arbitrary alloc/free/crash sequences, and exact crash semantics of the
//! dual-image pool.

use ido_nvm::alloc::NvAllocator;
use ido_nvm::root::RootTable;
use ido_nvm::{CrashPolicy, PmemPool, PoolConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum AllocOp {
    Alloc(usize),
    Free(usize),  // index into live set
    Crash(u64),
}

fn alloc_op() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        4 => (8usize..256).prop_map(AllocOp::Alloc),
        3 => (0usize..64).prop_map(AllocOp::Free),
        1 => (0u64..1000).prop_map(AllocOp::Crash),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Live allocations never overlap, survive crashes, and freed blocks
    /// are recyclable — for arbitrary operation sequences.
    #[test]
    fn allocator_never_overlaps_live_blocks(ops in prop::collection::vec(alloc_op(), 1..80)) {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = pool.handle();
        RootTable::format(&mut h);
        let mut alloc = NvAllocator::format(&mut h, pool.size());
        // live: payload addr -> size
        let mut live: BTreeMap<usize, usize> = BTreeMap::new();
        for op in ops {
            match op {
                AllocOp::Alloc(sz) => {
                    if let Ok(a) = alloc.alloc(&mut h, sz) {
                        // Must not overlap any live block.
                        for (&b, &bsz) in &live {
                            prop_assert!(
                                a + sz <= b || b + bsz <= a,
                                "overlap: new [{a},{}) vs live [{b},{})", a + sz, b + bsz
                            );
                        }
                        prop_assert_eq!(a % 8, 0);
                        live.insert(a, sz);
                    }
                }
                AllocOp::Free(i) => {
                    if !live.is_empty() {
                        let k = *live.keys().nth(i % live.len()).expect("nonempty");
                        live.remove(&k);
                        prop_assert!(alloc.free(&mut h, k).is_ok());
                    }
                }
                AllocOp::Crash(seed) => {
                    drop(h);
                    pool.crash(seed);
                    h = pool.handle();
                    alloc = NvAllocator::attach();
                    // Live blocks allocated before the crash must remain
                    // accounted for (their headers were persisted).
                    for (&b, _) in &live {
                        prop_assert!(alloc.size_of(&mut h, b).is_ok(), "lost block {b:#x}");
                    }
                }
            }
        }
    }

    /// DropDirty crash semantics: each word's post-crash value is exactly
    /// its last *fenced* value; fenced data is never lost.
    #[test]
    fn crash_preserves_exactly_fenced_words(
        writes in prop::collection::vec((0usize..64, 1u64..u64::MAX, prop::bool::ANY), 1..60),
    ) {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = pool.handle();
        let base = 4096;
        let mut fenced: BTreeMap<usize, u64> = BTreeMap::new();
        for (slot, value, do_persist) in writes {
            let addr = base + slot * 64; // one word per line: independent fates
            h.write_u64(addr, value);
            if do_persist {
                h.persist(addr, 8);
                fenced.insert(slot, value);
            }
        }
        drop(h);
        pool.crash(1);
        let mut h = pool.handle();
        for slot in 0..64 {
            let addr = base + slot * 64;
            prop_assert_eq!(h.read_u64(addr), *fenced.get(&slot).unwrap_or(&0));
        }
    }

    /// Under ANY eviction policy, a fenced word is never lost and an
    /// unfenced word is either its last written value or its last fenced
    /// value — never anything else (no torn/invented values at word grain).
    #[test]
    fn random_evictions_only_expose_real_values(
        writes in prop::collection::vec((0usize..32, 1u64..u64::MAX), 1..40),
        permille in 0u16..=1000,
        seed in 0u64..10_000,
    ) {
        let cfg = PoolConfig {
            crash_policy: CrashPolicy::Random { persist_permille: permille },
            ..PoolConfig::small_for_tests()
        };
        let pool = PmemPool::new(cfg);
        let mut h = pool.handle();
        let base = 4096;
        let mut last_written: BTreeMap<usize, u64> = BTreeMap::new();
        let mut last_fenced: BTreeMap<usize, u64> = BTreeMap::new();
        for (i, (slot, value)) in writes.iter().enumerate() {
            let addr = base + slot * 64;
            h.write_u64(addr, *value);
            last_written.insert(*slot, *value);
            if i % 3 == 0 {
                h.persist(addr, 8);
                last_fenced.insert(*slot, *value);
            }
        }
        drop(h);
        pool.crash(seed);
        let mut h = pool.handle();
        for slot in 0..32 {
            let addr = base + slot * 64;
            let got = h.read_u64(addr);
            let w = *last_written.get(&slot).unwrap_or(&0);
            let f = *last_fenced.get(&slot).unwrap_or(&0);
            prop_assert!(got == w || got == f, "slot {slot}: got {got}, want {w} or {f}");
        }
    }
}
