//! Crash-consistency sweep for `NvAllocator`: interrupt a scripted
//! allocate/free workload at **every** flush boundary and verify the heap
//! recovers well-formed, with no double-use and at most one leaked block.
//!
//! Crash points are enumerated from the pool's persist-event journal, not
//! hand-picked: a reference run counts the persist events the script
//! produces, then each event number in turn is armed as a persist trap
//! (`PmemPool::set_persist_trap`) that panics mid-operation — interrupting
//! composite allocator calls *between* their internal flushes, which
//! step-granular crash injection cannot reach. Each interruption is
//! followed by a crash under both extreme line policies (all dirty lines
//! lost, and all dirty lines evicted/survived) before re-attaching and
//! checking invariants.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ido_nvm::alloc::NvAllocator;
use ido_nvm::root::{RootTable, HEAP_START};
use ido_nvm::{CrashPolicy, PmemHandle, PmemPool, PoolConfig, PAddr};

const ALLOCATED_BIT: u64 = 1 << 63;
const HEADER_BYTES: usize = 8;

/// Silence the default panic printout for the trap panics this sweep
/// provokes by the dozen; other threads' panics still print.
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    use std::cell::Cell;
    use std::sync::Once;
    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(Cell::get) {
                prev(info);
            }
        }));
    });
    SUPPRESS.with(|s| s.set(true));
    let r = f();
    SUPPRESS.with(|s| s.set(false));
    r
}

fn fresh() -> (PmemPool, NvAllocator) {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let mut h = pool.handle();
    RootTable::format(&mut h);
    let alloc = NvAllocator::format(&mut h, HEAP_START + (8 << 10));
    (pool, alloc)
}

/// The scripted workload: exercises bump allocation, free-list push,
/// first-fit reuse, and block splitting.
fn script(alloc: &NvAllocator, h: &mut PmemHandle) {
    let a = alloc.alloc(h, 24).unwrap();
    let b = alloc.alloc(h, 100).unwrap();
    alloc.free(h, a).unwrap();
    let _c = alloc.alloc(h, 8).unwrap(); // first-fit reuse of `a`
    let d = alloc.alloc(h, 200).unwrap();
    alloc.free(h, b).unwrap();
    alloc.free(h, d).unwrap();
    let _e = alloc.alloc(h, 48).unwrap(); // split of `d`'s 200-byte block
}

/// One heap block as seen by the tiling walk.
struct Block {
    payload: PAddr,
    size: usize,
    allocated: bool,
}

/// Walks the heap by headers from `HEAP_START` to the bump pointer and
/// checks structural invariants; panics on any corruption.
fn walk_heap(h: &mut PmemHandle) -> Vec<Block> {
    // Allocator metadata layout (stable, asserted by the allocator's own
    // unit tests): bump pointer is the first metadata word.
    let meta = ido_nvm::root::ALLOC_META_ADDR;
    let bump = h.read_u64(meta) as PAddr;
    assert!(bump >= HEAP_START, "bump below heap start");
    let mut blocks = Vec::new();
    let mut cur = HEAP_START;
    while cur < bump {
        let header = h.read_u64(cur);
        let size = (header & !ALLOCATED_BIT) as usize;
        assert!(size >= 8 && size % 8 == 0, "corrupt header {header:#x} at {cur:#x}");
        assert!(
            cur + HEADER_BYTES + size <= bump,
            "block at {cur:#x} overruns the bump pointer"
        );
        blocks.push(Block {
            payload: cur + HEADER_BYTES,
            size,
            allocated: header & ALLOCATED_BIT != 0,
        });
        cur += HEADER_BYTES + size;
    }
    assert_eq!(cur, bump, "heap does not tile exactly to the bump pointer");
    blocks
}

/// Collects the free list, checking it is acyclic, in-heap, and never
/// overlaps a block the walk says is live.
fn check_free_list(h: &mut PmemHandle, blocks: &[Block]) -> BTreeSet<PAddr> {
    let meta = ido_nvm::root::ALLOC_META_ADDR;
    let bump = h.read_u64(meta) as PAddr;
    let mut seen = BTreeSet::new();
    let mut cur = h.read_u64(meta + 8) as PAddr; // free head
    while cur != 0 {
        assert!(seen.insert(cur), "free list cycles at {cur:#x}");
        assert!(seen.len() <= 1024, "free list unreasonably long");
        assert!(
            (HEAP_START + HEADER_BYTES..bump).contains(&cur),
            "free entry {cur:#x} outside heap"
        );
        let header = h.read_u64(cur - HEADER_BYTES);
        assert_eq!(header & ALLOCATED_BIT, 0, "free list holds allocated block {cur:#x}");
        let size = header as usize;
        for b in blocks.iter().filter(|b| b.allocated) {
            let disjoint = cur + size <= b.payload - HEADER_BYTES || cur >= b.payload + b.size;
            assert!(disjoint, "free entry {cur:#x} overlaps live block {:#x}", b.payload);
        }
        cur = h.read_u64(cur) as PAddr;
    }
    seen
}

/// Full post-recovery invariant check: structure, free list, double-use,
/// and bounded leakage.
fn check_recovered_heap(pool: &PmemPool) {
    let alloc = NvAllocator::attach();
    let mut h = pool.handle();
    let blocks = walk_heap(&mut h);
    let free = check_free_list(&mut h, &blocks);

    // At most one block can leak per interrupted operation: walk-free
    // blocks that are unreachable from the free list (including the
    // container of a half-split block, whose tail IS on the list).
    let leaked = blocks
        .iter()
        .filter(|b| !b.allocated)
        .filter(|b| !free.contains(&b.payload))
        .filter(|b| !free.iter().any(|&f| f > b.payload && f < b.payload + b.size))
        .count();
    assert!(leaked <= 1, "an interrupted op may leak at most one block, found {leaked}");

    // No double-use: new allocations must not overlap any block the walk
    // says is live, nor each other.
    let live: Vec<(PAddr, usize)> = blocks
        .iter()
        .filter(|b| b.allocated)
        .map(|b| (b.payload, b.size))
        .collect();
    let mut fresh_blocks: Vec<(PAddr, usize)> = Vec::new();
    for _ in 0..8 {
        let p = alloc.alloc(&mut h, 16).expect("recovered heap can still allocate");
        for &(q, qs) in live.iter().chain(fresh_blocks.iter()) {
            let disjoint = p + 16 <= q - HEADER_BYTES || p >= q + qs;
            assert!(disjoint, "fresh allocation {p:#x} overlaps live block {q:#x}");
        }
        fresh_blocks.push((p, 16));
    }
    // And the recovered metadata stays internally consistent afterwards.
    walk_heap(&mut h);
}

/// Reference pass: how many persist events does the script produce?
fn script_persist_events() -> (u64, u64) {
    let (pool, alloc) = fresh();
    let setup = pool.persist_event_count();
    let mut h = pool.handle();
    script(&alloc, &mut h);
    drop(h);
    (setup, pool.persist_event_count())
}

#[test]
fn allocator_survives_interruption_at_every_flush_boundary() {
    let (setup_events, total_events) = script_persist_events();
    assert!(
        total_events - setup_events > 20,
        "script should span many flush boundaries, got {}",
        total_events - setup_events
    );
    let policies = [CrashPolicy::DropDirty, CrashPolicy::losing([])];
    let mut fired = 0;
    for k in setup_events + 1..=total_events {
        for policy in &policies {
            let (pool, alloc) = fresh();
            pool.set_persist_trap(Some(k));
            let mut h = pool.handle();
            let r = quiet(|| {
                catch_unwind(AssertUnwindSafe(|| script(&alloc, &mut h)))
            });
            drop(h);
            pool.set_persist_trap(None);
            assert!(r.is_err(), "trap at event {k} must interrupt the script");
            fired += 1;
            pool.crash_with(k, policy);
            check_recovered_heap(&pool);
        }
    }
    assert_eq!(fired as u64, (total_events - setup_events) * 2);
}

#[test]
fn uninterrupted_script_leaves_a_clean_heap() {
    let (pool, alloc) = fresh();
    let mut h = pool.handle();
    script(&alloc, &mut h);
    drop(h);
    pool.crash(7);
    check_recovered_heap(&pool);
}

#[test]
fn interrupted_free_never_double_links() {
    // Narrow regression: trap inside `free`'s push (link → header → head).
    // Whichever flush the crash lands on, the block must end up either
    // still allocated (rolled back) or free exactly once — never twice.
    for k in 1..=6u64 {
        let (pool, alloc) = fresh();
        let mut h = pool.handle();
        let a = alloc.alloc(&mut h, 32).unwrap();
        let base = pool.persist_event_count();
        pool.set_persist_trap(Some(base + k));
        let r = quiet(|| catch_unwind(AssertUnwindSafe(|| alloc.free(&mut h, a))));
        drop(h);
        pool.set_persist_trap(None);
        pool.crash(k);
        let mut h = pool.handle();
        let blocks = walk_heap(&mut h);
        let free = check_free_list(&mut h, &blocks);
        assert!(free.len() <= 1, "block freed at most once");
        if r.is_ok() {
            // free() completed before the trap window closed — the block
            // must be durably on the list (free persists all its flushes).
            assert!(free.contains(&a), "completed free must survive the crash");
        }
    }
}
