//! Crash-consistency sweep for `NvAllocator`: interrupt a scripted
//! allocate/free workload at **every** flush boundary and verify the heap
//! recovers well-formed, with no double-use and at most one leaked block.
//!
//! Crash points are enumerated from the pool's persist-event journal, not
//! hand-picked: a reference run counts the persist events the script
//! produces, then each event number in turn is armed as a persist trap
//! (`PmemPool::set_persist_trap`) that panics mid-operation — interrupting
//! composite allocator calls *between* their internal flushes, which
//! step-granular crash injection cannot reach. Each interruption is
//! followed by a crash under both extreme line policies (all dirty lines
//! lost, and all dirty lines evicted/survived) before re-attaching and
//! checking invariants.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

use ido_nvm::alloc::{AllocPolicy, NvAllocator, CHUNK_BYTES, CLASS_SIZES, DESC_BYTES};
use ido_nvm::root::{RootTable, HEAP_START};
use ido_nvm::{CrashPolicy, PmemHandle, PmemPool, PoolConfig, PAddr};

const ALLOCATED_BIT: u64 = 1 << 63;
const HEADER_BYTES: usize = 8;

/// Silence the default panic printout for the trap panics this sweep
/// provokes by the dozen; other threads' panics still print.
fn quiet<T>(f: impl FnOnce() -> T) -> T {
    use std::cell::Cell;
    use std::sync::Once;
    thread_local! {
        static SUPPRESS: Cell<bool> = const { Cell::new(false) };
    }
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS.with(Cell::get) {
                prev(info);
            }
        }));
    });
    SUPPRESS.with(|s| s.set(true));
    let r = f();
    SUPPRESS.with(|s| s.set(false));
    r
}

fn fresh() -> (PmemPool, NvAllocator) {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let mut h = pool.handle();
    RootTable::format(&mut h);
    let alloc = NvAllocator::format(&mut h, HEAP_START + (8 << 10));
    (pool, alloc)
}

/// The scripted workload: exercises bump allocation, free-list push,
/// first-fit reuse, and block splitting.
fn script(alloc: &NvAllocator, h: &mut PmemHandle) {
    let a = alloc.alloc(h, 24).unwrap();
    let b = alloc.alloc(h, 100).unwrap();
    alloc.free(h, a).unwrap();
    let _c = alloc.alloc(h, 8).unwrap(); // first-fit reuse of `a`
    let d = alloc.alloc(h, 200).unwrap();
    alloc.free(h, b).unwrap();
    alloc.free(h, d).unwrap();
    let _e = alloc.alloc(h, 48).unwrap(); // split of `d`'s 200-byte block
}

/// One heap block as seen by the tiling walk.
struct Block {
    payload: PAddr,
    size: usize,
    allocated: bool,
}

/// Walks the list-managed region by headers from `floor` (`HEAP_START`
/// for the legacy policy, `large_start` for the sharded one) to the bump
/// pointer and checks structural invariants; panics on any corruption.
fn walk_heap_from(h: &mut PmemHandle, floor: PAddr) -> Vec<Block> {
    // Allocator metadata layout (stable, asserted by the allocator's own
    // unit tests): bump pointer is the first metadata word.
    let meta = ido_nvm::root::ALLOC_META_ADDR;
    let bump = h.read_u64(meta) as PAddr;
    assert!(bump >= floor, "bump below region start");
    let mut blocks = Vec::new();
    let mut cur = floor;
    while cur < bump {
        let header = h.read_u64(cur);
        let size = (header & !ALLOCATED_BIT) as usize;
        assert!(size >= 8 && size % 8 == 0, "corrupt header {header:#x} at {cur:#x}");
        assert!(
            cur + HEADER_BYTES + size <= bump,
            "block at {cur:#x} overruns the bump pointer"
        );
        blocks.push(Block {
            payload: cur + HEADER_BYTES,
            size,
            allocated: header & ALLOCATED_BIT != 0,
        });
        cur += HEADER_BYTES + size;
    }
    assert_eq!(cur, bump, "heap does not tile exactly to the bump pointer");
    blocks
}

/// Collects the free list, checking it is acyclic, in-region, and never
/// overlaps a block the walk says is live.
fn check_free_list_from(h: &mut PmemHandle, blocks: &[Block], floor: PAddr) -> BTreeSet<PAddr> {
    let meta = ido_nvm::root::ALLOC_META_ADDR;
    let bump = h.read_u64(meta) as PAddr;
    let mut seen = BTreeSet::new();
    let mut cur = h.read_u64(meta + 8) as PAddr; // free head
    while cur != 0 {
        assert!(seen.insert(cur), "free list cycles at {cur:#x}");
        assert!(seen.len() <= 1024, "free list unreasonably long");
        assert!(
            (floor + HEADER_BYTES..bump).contains(&cur),
            "free entry {cur:#x} outside heap"
        );
        let header = h.read_u64(cur - HEADER_BYTES);
        assert_eq!(header & ALLOCATED_BIT, 0, "free list holds allocated block {cur:#x}");
        let size = header as usize;
        for b in blocks.iter().filter(|b| b.allocated) {
            let disjoint = cur + size <= b.payload - HEADER_BYTES || cur >= b.payload + b.size;
            assert!(disjoint, "free entry {cur:#x} overlaps live block {:#x}", b.payload);
        }
        cur = h.read_u64(cur) as PAddr;
    }
    seen
}

/// Full post-recovery invariant check: structure, free list, double-use,
/// and bounded leakage.
fn check_recovered_heap(pool: &PmemPool) {
    let alloc = NvAllocator::attach();
    let mut h = pool.handle();
    let blocks = walk_heap_from(&mut h, HEAP_START);
    let free = check_free_list_from(&mut h, &blocks, HEAP_START);

    // At most one block can leak per interrupted operation: walk-free
    // blocks that are unreachable from the free list (including the
    // container of a half-split block, whose tail IS on the list).
    let leaked = blocks
        .iter()
        .filter(|b| !b.allocated)
        .filter(|b| !free.contains(&b.payload))
        .filter(|b| !free.iter().any(|&f| f > b.payload && f < b.payload + b.size))
        .count();
    assert!(leaked <= 1, "an interrupted op may leak at most one block, found {leaked}");

    // No double-use: new allocations must not overlap any block the walk
    // says is live, nor each other.
    let live: Vec<(PAddr, usize)> = blocks
        .iter()
        .filter(|b| b.allocated)
        .map(|b| (b.payload, b.size))
        .collect();
    let mut fresh_blocks: Vec<(PAddr, usize)> = Vec::new();
    for _ in 0..8 {
        let p = alloc.alloc(&mut h, 16).expect("recovered heap can still allocate");
        for &(q, qs) in live.iter().chain(fresh_blocks.iter()) {
            let disjoint = p + 16 <= q - HEADER_BYTES || p >= q + qs;
            assert!(disjoint, "fresh allocation {p:#x} overlaps live block {q:#x}");
        }
        fresh_blocks.push((p, 16));
    }
    // And the recovered metadata stays internally consistent afterwards.
    walk_heap_from(&mut h, HEAP_START);
}

/// Reference pass: how many persist events does the script produce?
fn script_persist_events() -> (u64, u64) {
    let (pool, alloc) = fresh();
    let setup = pool.persist_event_count();
    let mut h = pool.handle();
    script(&alloc, &mut h);
    drop(h);
    (setup, pool.persist_event_count())
}

#[test]
fn allocator_survives_interruption_at_every_flush_boundary() {
    let (setup_events, total_events) = script_persist_events();
    assert!(
        total_events - setup_events > 20,
        "script should span many flush boundaries, got {}",
        total_events - setup_events
    );
    let policies = [CrashPolicy::DropDirty, CrashPolicy::losing([])];
    let mut fired = 0;
    for k in setup_events + 1..=total_events {
        for policy in &policies {
            let (pool, alloc) = fresh();
            pool.set_persist_trap(Some(k));
            let mut h = pool.handle();
            let r = quiet(|| {
                catch_unwind(AssertUnwindSafe(|| script(&alloc, &mut h)))
            });
            drop(h);
            pool.set_persist_trap(None);
            assert!(r.is_err(), "trap at event {k} must interrupt the script");
            fired += 1;
            pool.crash_with(k, policy);
            check_recovered_heap(&pool);
        }
    }
    assert_eq!(fired as u64, (total_events - setup_events) * 2);
}

#[test]
fn uninterrupted_script_leaves_a_clean_heap() {
    let (pool, alloc) = fresh();
    let mut h = pool.handle();
    script(&alloc, &mut h);
    drop(h);
    pool.crash(7);
    check_recovered_heap(&pool);
}

#[test]
fn interrupted_free_never_double_links() {
    // Narrow regression: trap inside `free`'s push (link → header → head).
    // Whichever flush the crash lands on, the block must end up either
    // still allocated (rolled back) or free exactly once — never twice.
    for k in 1..=6u64 {
        let (pool, alloc) = fresh();
        let mut h = pool.handle();
        let a = alloc.alloc(&mut h, 32).unwrap();
        let base = pool.persist_event_count();
        pool.set_persist_trap(Some(base + k));
        let r = quiet(|| catch_unwind(AssertUnwindSafe(|| alloc.free(&mut h, a))));
        drop(h);
        pool.set_persist_trap(None);
        pool.crash(k);
        let mut h = pool.handle();
        let blocks = walk_heap_from(&mut h, HEAP_START);
        let free = check_free_list_from(&mut h, &blocks, HEAP_START);
        assert!(free.len() <= 1, "block freed at most once");
        if r.is_ok() {
            // free() completed before the trap window closed — the block
            // must be durably on the list (free persists all its flushes).
            assert!(free.contains(&a), "completed free must survive the crash");
        }
    }
}

// ---------------------------------------------------------------------
// Sharded-policy sweep
// ---------------------------------------------------------------------
//
// Same methodology over the two-level allocator's metadata: every flush
// boundary of a script spanning multiple size classes, two shards,
// cross-shard frees, chunk formatting, cache reuse, and the large-object
// fallback. A durable side ledger records which blocks the "application"
// published (entry persisted *before* the count bump, tombstoned *before*
// the free), so the post-crash check can distinguish mandatory-live
// blocks (must still be allocated — anything else is corruption) from
// in-flight ones (may have leaked — allowed).

const SHARDS: usize = 4;
const LEDGER_BYTES: usize = 4096;

fn fresh_sharded() -> (PmemPool, NvAllocator, PAddr) {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let ledger = pool.size() - LEDGER_BYTES;
    let mut h = pool.handle();
    RootTable::format(&mut h);
    let alloc =
        NvAllocator::format_with(&mut h, ledger, AllocPolicy::Sharded { shards: SHARDS });
    h.write_u64(ledger, 0);
    h.persist(ledger, 8);
    (pool, alloc, ledger)
}

/// Publishes `(addr, size)` in the ledger: entry first, count second, each
/// persisted — a crash can lose the block (leak) but never fabricate a
/// live entry for an unallocated block.
fn publish(h: &mut PmemHandle, ledger: PAddr, addr: PAddr, size: usize) -> usize {
    let n = h.read_u64(ledger) as usize;
    let e = ledger + 8 + n * 32;
    h.write_u64(e, addr as u64);
    h.write_u64(e + 8, size as u64);
    h.write_u64(e + 16, 1);
    h.persist(e, 24);
    h.write_u64(ledger, (n + 1) as u64);
    h.persist(ledger, 8);
    n
}

/// Durably retires ledger entry `idx` (tombstone before the free call).
fn retire(h: &mut PmemHandle, ledger: PAddr, idx: usize) -> PAddr {
    let e = ledger + 8 + idx * 32;
    let addr = h.read_u64(e) as PAddr;
    h.write_u64(e + 16, 0);
    h.persist(e + 16, 8);
    addr
}

/// The sharded workload: two shard handles, three small classes, chunk
/// formatting, cross-shard free, cache reuse, and a large block through
/// the fallback list.
fn script_sharded(
    alloc: &NvAllocator,
    h0: &mut PmemHandle,
    h1: &mut PmemHandle,
    ledger: PAddr,
) {
    let a = alloc.alloc(h0, 16).unwrap();
    let ia = publish(h0, ledger, a, 16);
    let b = alloc.alloc(h0, 48).unwrap();
    let ib = publish(h0, ledger, b, 48);
    let c = alloc.alloc(h1, 16).unwrap();
    publish(h1, ledger, c, 16);
    let d = alloc.alloc(h0, 2048).unwrap(); // large: legacy fallback list
    let id = publish(h0, ledger, d, 2048);

    retire(h1, ledger, ia);
    alloc.free(h1, a).unwrap(); // cross-shard free: lands in shard 1's cache
    let e = alloc.alloc(h1, 16).unwrap(); // cache reuse (re-claims the bit)
    publish(h1, ledger, e, 16);

    retire(h0, ledger, id);
    alloc.free(h0, d).unwrap(); // large free: list push
    let f = alloc.alloc(h0, 300).unwrap(); // 512-byte class
    publish(h0, ledger, f, 300);

    retire(h0, ledger, ib);
    alloc.free(h0, b).unwrap();
    let g = alloc.alloc(h0, 48).unwrap(); // same-shard cache reuse
    publish(h0, ledger, g, 48);
}

/// Reads the sharded layout words and every chunk descriptor; returns
/// `(chunks_base, large_start, allocated small slots)`. Panics on any
/// descriptor whose class word is not `{0} ∪ CLASS_SIZES` — after a crash
/// at *any* flush boundary there must be no third state.
fn scan_chunks(h: &mut PmemHandle) -> (PAddr, PAddr, Vec<(PAddr, usize)>) {
    let n_chunks = h.read_u64(HEAP_START + 8) as usize;
    let large_start = h.read_u64(HEAP_START + 24) as PAddr;
    let desc_base = HEAP_START + DESC_BYTES;
    let chunks_base = desc_base + n_chunks * DESC_BYTES;
    let mut slots = Vec::new();
    for c in 0..n_chunks {
        let desc = desc_base + c * DESC_BYTES;
        let cw = h.read_u64(desc) as usize;
        if cw == 0 {
            continue;
        }
        assert!(
            CLASS_SIZES.contains(&cw),
            "chunk {c} has corrupt class word {cw:#x} after crash"
        );
        let spc = (CHUNK_BYTES / cw).min(256);
        for slot in 0..spc {
            let w = h.read_u64(desc + 32 + (slot / 64) * 8);
            if w >> (slot % 64) & 1 == 1 {
                slots.push((chunks_base + c * CHUNK_BYTES + slot * cw, cw));
            }
        }
    }
    (chunks_base, large_start, slots)
}

/// Full post-crash invariant check for the sharded policy.
fn check_recovered_sharded(pool: &PmemPool, ledger: PAddr) {
    let mut h = pool.handle();
    // Recovery itself validates the magic and every class word it reads.
    let alloc = NvAllocator::attach_with(&mut h, AllocPolicy::Sharded { shards: SHARDS });
    let (_, large_start, slots) = scan_chunks(&mut h);
    let large = walk_heap_from(&mut h, large_start);
    check_free_list_from(&mut h, &large, large_start);

    // Ledger-live blocks must still be allocated in persistent state.
    let n = h.read_u64(ledger) as usize;
    let mut live: Vec<(PAddr, usize)> = Vec::new();
    for i in 0..n {
        let e = ledger + 8 + i * 32;
        if h.read_u64(e + 16) != 1 {
            continue;
        }
        let (addr, size) = (h.read_u64(e) as PAddr, h.read_u64(e + 8) as usize);
        if addr >= large_start {
            let blk = large
                .iter()
                .find(|b| b.payload == addr)
                .unwrap_or_else(|| panic!("live large block {addr:#x} vanished"));
            assert!(blk.allocated, "live large block {addr:#x} lost its allocated bit");
            assert!(blk.size >= size, "live large block {addr:#x} shrank");
        } else {
            let slot = slots
                .iter()
                .find(|(s, _)| *s == addr)
                .unwrap_or_else(|| panic!("live small block {addr:#x} lost its bitmap bit"));
            assert!(slot.1 >= size, "live small block {addr:#x} in an undersized class");
        }
        live.push((addr, size));
    }
    // No two live blocks overlap (double-allocation would show up here).
    for (i, &(x, xs)) in live.iter().enumerate() {
        for &(y, ys) in &live[i + 1..] {
            assert!(x + xs <= y || y + ys <= x, "live blocks {x:#x}/{y:#x} overlap");
        }
    }

    // Leaks are bounded: one interrupted allocator op plus one in-flight
    // publish can each strand a block, never more.
    let covered = |addr: PAddr| live.iter().any(|&(a, _)| a == addr);
    let leaked_small = slots.iter().filter(|(a, _)| !covered(*a)).count();
    let leaked_large = large.iter().filter(|b| b.allocated && !covered(b.payload)).count();
    assert!(
        leaked_small + leaked_large <= 2,
        "too many stranded blocks: {leaked_small} small + {leaked_large} large"
    );

    // The recovered heap still serves every class, disjointly from every
    // surviving block and from itself.
    let mut fresh_blocks: Vec<(PAddr, usize)> = Vec::new();
    for size in [8usize, 16, 48, 64, 200, 512, 1500, 16] {
        let p = alloc.alloc(&mut h, size).expect("recovered sharded heap allocates");
        for &(q, qs) in live.iter().chain(fresh_blocks.iter()) {
            assert!(
                p + size <= q || q + qs <= p,
                "fresh allocation {p:#x} overlaps surviving block {q:#x}"
            );
        }
        fresh_blocks.push((p, size));
    }
}

/// Reference pass for the sharded script's persist-event span.
fn sharded_persist_events() -> (u64, u64) {
    let (pool, alloc, ledger) = fresh_sharded();
    let setup = pool.persist_event_count();
    let mut h0 = pool.handle();
    let mut h1 = pool.handle();
    h1.set_shard(1);
    script_sharded(&alloc, &mut h0, &mut h1, ledger);
    drop((h0, h1));
    (setup, pool.persist_event_count())
}

#[test]
fn sharded_allocator_survives_interruption_at_every_flush_boundary() {
    let (setup_events, total_events) = sharded_persist_events();
    assert!(
        total_events - setup_events > 30,
        "sharded script should span many flush boundaries, got {}",
        total_events - setup_events
    );
    let policies = [CrashPolicy::DropDirty, CrashPolicy::losing([])];
    for k in setup_events + 1..=total_events {
        for policy in &policies {
            let (pool, alloc, ledger) = fresh_sharded();
            pool.set_persist_trap(Some(k));
            let mut h0 = pool.handle();
            let mut h1 = pool.handle();
            h1.set_shard(1);
            let r = quiet(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    script_sharded(&alloc, &mut h0, &mut h1, ledger)
                }))
            });
            drop((h0, h1));
            pool.set_persist_trap(None);
            assert!(r.is_err(), "trap at event {k} must interrupt the sharded script");
            pool.crash_with(k, policy);
            check_recovered_sharded(&pool, ledger);
        }
    }
}

#[test]
fn uninterrupted_sharded_script_recovers_clean() {
    let (pool, alloc, ledger) = fresh_sharded();
    let mut h0 = pool.handle();
    let mut h1 = pool.handle();
    h1.set_shard(1);
    script_sharded(&alloc, &mut h0, &mut h1, ledger);
    drop((h0, h1));
    pool.crash(11);
    check_recovered_sharded(&pool, ledger);
}
