//! Property-based and directed tests of the sharded two-level allocator:
//! model-checked disjointness under arbitrary concurrent alloc/free
//! schedules across shards, crash survival of live blocks, rerun
//! determinism, and `ido-par` job-count independence.
//!
//! "Concurrent" here means DES-concurrent: each shard has its own
//! [`PmemHandle`] and the generated schedule interleaves operations across
//! shards in an arbitrary (but deterministic, seed-derived) order — the
//! same interleaving freedom real threads would have under the MinClock
//! scheduler, without nondeterministic OS scheduling.

use std::collections::BTreeMap;

use ido_nvm::alloc::{AllocPolicy, NvAllocator, CLASS_SIZES, MAX_SMALL};
use ido_nvm::root::RootTable;
use ido_nvm::{NvmError, PmemPool, PoolConfig};
use proptest::prelude::*;

const SHARDS: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    /// `(shard, size)` — size spans every small class plus large fallback.
    Alloc(usize, usize),
    /// `(shard, index into that shard's live set)` — frees may cross
    /// shards: the *owning* shard is `index % live` over the global set.
    Free(usize, usize),
    Crash(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0usize..SHARDS, 8usize..1024).prop_map(|(s, sz)| Op::Alloc(s, sz)),
        3 => (0usize..SHARDS, 0usize..128).prop_map(|(s, i)| Op::Free(s, i)),
        1 => (0u64..1000).prop_map(Op::Crash),
    ]
}

fn fresh_sharded(pool: &PmemPool) -> NvAllocator {
    let mut h = pool.handle();
    RootTable::format(&mut h);
    NvAllocator::format_with(&mut h, pool.size(), AllocPolicy::Sharded { shards: SHARDS })
}

/// Replays `ops` against a sharded pool and the volatile model, checking
/// disjointness and crash survival throughout. Returns the sequence of
/// addresses handed out (the determinism tests compare these).
fn replay(pool: &PmemPool, ops: &[Op]) -> Vec<usize> {
    let alloc = fresh_sharded(pool);
    let mut handles: Vec<_> = (0..SHARDS)
        .map(|i| {
            let mut h = pool.handle();
            h.set_shard(i as u32);
            h
        })
        .collect();
    // Model: payload addr -> (size, rounded-class capacity).
    let mut live: BTreeMap<usize, usize> = BTreeMap::new();
    let mut issued = Vec::new();
    for op in ops {
        match *op {
            Op::Alloc(shard, sz) => {
                if let Ok(a) = alloc.alloc(&mut handles[shard], sz) {
                    prop_assert_eq!(a % 8, 0, "misaligned allocation {:#x}", a);
                    let cap = CLASS_SIZES
                        .iter()
                        .copied()
                        .find(|&c| c >= sz)
                        .unwrap_or(sz.next_multiple_of(8));
                    for (&b, &bcap) in &live {
                        prop_assert!(
                            a + cap <= b || b + bcap <= a,
                            "overlap: new [{:#x},{:#x}) vs live [{:#x},{:#x})",
                            a, a + cap, b, b + bcap
                        );
                    }
                    live.insert(a, cap);
                    issued.push(a);
                }
            }
            Op::Free(shard, i) => {
                if !live.is_empty() {
                    let k = *live.keys().nth(i % live.len()).expect("nonempty");
                    live.remove(&k);
                    // Frees go through an arbitrary shard's handle: blocks
                    // may be freed by a different shard than allocated them.
                    prop_assert!(alloc.free(&mut handles[shard], k).is_ok());
                }
            }
            Op::Crash(seed) => {
                drop(std::mem::take(&mut handles));
                pool.crash(seed);
                let mut h = pool.handle();
                let alloc2 =
                    NvAllocator::attach_with(&mut h, AllocPolicy::Sharded { shards: SHARDS });
                for (&b, _) in &live {
                    prop_assert!(
                        alloc2.size_of(&mut h, b).is_ok(),
                        "lost live block {:#x} across crash", b
                    );
                }
                drop(h);
                handles = (0..SHARDS)
                    .map(|i| {
                        let mut h = pool.handle();
                        h.set_shard(i as u32);
                        h
                    })
                    .collect();
            }
        }
    }
    issued
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interleaved alloc/free/crash schedules across 4 shards
    /// never hand out overlapping blocks, and completed allocations
    /// survive crashes.
    #[test]
    fn sharded_allocator_never_overlaps_across_shards(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        replay(&pool, &ops);
    }

    /// The same schedule replayed on a fresh pool yields the exact same
    /// address sequence: the sharded allocator is deterministic (no
    /// wall-clock, no ambient randomness).
    #[test]
    fn sharded_allocator_is_deterministic(
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let a = replay(&PmemPool::new(PoolConfig::small_for_tests()), &ops);
        let b = replay(&PmemPool::new(PoolConfig::small_for_tests()), &ops);
        prop_assert_eq!(a, b);
    }
}

/// `ido-par` fan-out does not perturb allocator results: the same set of
/// independent churn points produces byte-identical outcomes under 1 and 2
/// workers. This is the in-process twin of the CI `IDO_JOBS` diff on
/// `BENCH_alloc.json`.
#[test]
fn par_jobs_do_not_change_allocator_results() {
    fn churn_point(seed: u64) -> (u64, Vec<usize>) {
        let pool = PmemPool::new(PoolConfig {
            size: 1 << 20,
            trace: PoolConfig::small_for_tests().trace,
            ..PoolConfig::default()
        });
        let alloc = fresh_sharded(&pool);
        let mut h = pool.handle();
        h.set_shard((seed % SHARDS as u64) as u32);
        let mut x = seed | 1;
        let mut live = Vec::new();
        let mut addrs = Vec::new();
        for _ in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if !live.is_empty() && x & 3 == 0 {
                let victim = (x >> 32) as usize % live.len();
                alloc.free(&mut h, live.swap_remove(victim)).expect("free");
            } else {
                let a = alloc.alloc(&mut h, 8 + (x as usize >> 8 & 0x1F8)).expect("alloc");
                live.push(a);
                addrs.push(a);
            }
        }
        (h.clock_ns(), addrs)
    }
    let seeds: Vec<u64> = (0..8).map(|i| 0x9E37_79B9 + 977 * i).collect();
    let one = ido_par::par_map_jobs(1, seeds.clone(), churn_point);
    let two = ido_par::par_map_jobs(2, seeds, churn_point);
    assert_eq!(one, two, "worker count changed allocator outcomes");
}

// ------------------------- directed tests --------------------------

#[test]
fn sizes_round_up_to_class_capacity() {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let alloc = fresh_sharded(&pool);
    let mut h = pool.handle();
    for (req, want) in [(1, 8), (8, 8), (9, 16), (48, 64), (65, 128), (512, 512)] {
        let a = alloc.alloc(&mut h, req).expect("alloc");
        assert_eq!(alloc.size_of(&mut h, a).expect("size_of"), want, "request {req}");
    }
    // Above MAX_SMALL: the legacy list rounds to 8, not to a class.
    let a = alloc.alloc(&mut h, MAX_SMALL + 1).expect("large alloc");
    let got = alloc.size_of(&mut h, a).expect("size_of");
    assert!(got >= MAX_SMALL + 1 && got % 8 == 0, "large size {got}");
}

#[test]
fn double_free_is_rejected_without_corruption() {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let alloc = fresh_sharded(&pool);
    let mut h = pool.handle();
    let a = alloc.alloc(&mut h, 64).expect("alloc");
    let b = alloc.alloc(&mut h, 64).expect("alloc");
    alloc.free(&mut h, a).expect("first free");
    assert!(matches!(alloc.free(&mut h, a), Err(NvmError::InvalidFree { .. })), "double free");
    // The other block is untouched and the heap still serves requests.
    assert_eq!(alloc.size_of(&mut h, b).expect("b alive"), 64);
    let c = alloc.alloc(&mut h, 64).expect("alloc after double free");
    assert_ne!(c, b);
}

#[test]
fn exhaustion_returns_oom_and_recovers_after_free() {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let alloc = fresh_sharded(&pool);
    let mut h = pool.handle();
    let mut blocks = Vec::new();
    loop {
        match alloc.alloc(&mut h, 512) {
            Ok(a) => blocks.push(a),
            Err(NvmError::OutOfMemory { .. }) => break,
            Err(e) => panic!("unexpected error {e:?}"),
        }
        assert!(blocks.len() < 1 << 20, "never exhausts");
    }
    // Freeing anything makes that class servable again.
    let victim = blocks[blocks.len() / 2];
    alloc.free(&mut h, victim).expect("free");
    let again = alloc.alloc(&mut h, 512).expect("alloc after free");
    assert_eq!(again, victim, "class cache should recycle the freed slot");
}

#[test]
fn stealing_keeps_blocks_disjoint_when_one_shard_hoards() {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let alloc = fresh_sharded(&pool);
    let mut rich = pool.handle();
    rich.set_shard(0);
    let mut poor = pool.handle();
    poor.set_shard(1);
    // Shard 0 allocates then frees a pile of 64-byte blocks, stuffing its
    // volatile cache.
    let mut hoard: Vec<usize> = (0..64).map(|_| alloc.alloc(&mut rich, 64).expect("hoard")).collect();
    for a in hoard.drain(..) {
        alloc.free(&mut rich, a).expect("hoard free");
    }
    // Consume the free-chunk supply so shard 1's refills must steal.
    let mut filler = Vec::new();
    while let Ok(a) = alloc.alloc(&mut rich, 512) {
        filler.push(a);
    }
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..32 {
        let a = alloc.alloc(&mut poor, 64).expect("steal-backed alloc");
        assert!(seen.insert(a), "stolen slot {a:#x} handed out twice");
        for &f in &filler {
            assert!(a + 64 <= f || f + 512 <= a, "stolen slot overlaps filler");
        }
    }
}

#[test]
fn large_allocations_fall_back_to_the_list_and_recycle() {
    let pool = PmemPool::new(PoolConfig::small_for_tests());
    let alloc = fresh_sharded(&pool);
    let mut h = pool.handle();
    let a = alloc.alloc(&mut h, 4096).expect("large");
    let b = alloc.alloc(&mut h, 4096).expect("large");
    assert!(a + 4096 <= b || b + 4096 <= a);
    alloc.free(&mut h, a).expect("free large");
    let c = alloc.alloc(&mut h, 4000).expect("first-fit reuse");
    assert_eq!(c, a, "freed large block should be reused first-fit");
}
