//! Native NVThreads session: page-granularity REDO logging.
//!
//! NVThreads runs critical sections on private page copies (OS page
//! protection): the first store to each page pays a copy-on-write page
//! duplication, and lock release writes the dirty pages to a persistent
//! REDO log before publishing them. We buffer stores in a write set
//! (observationally equivalent to page copies for data-race-free programs)
//! and charge the page-granular costs: `PAGE_COPY_NS` per first touch and
//! `PAGE_LOG_NS` per dirty page at commit.

use std::collections::{BTreeMap, BTreeSet};

use ido_core::Session;
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};

use crate::alog::{AppendLog, Kind};
use crate::registry::LogRegistry;

const ROOT: &str = "nvthreads_sessions";
/// Page size assumed by the page-protection machinery.
pub const PAGE_BYTES: usize = 4096;
/// Cost of the copy-on-write duplication at first touch of a page.
pub const PAGE_COPY_NS: u64 = 1200;
/// Cost of writing one dirty page to the redo log at commit.
pub const PAGE_LOG_NS: u64 = 2500;

/// Factory for [`NvthreadsSession`]s.
#[derive(Debug, Clone)]
pub struct NvthreadsRuntime {
    registry: LogRegistry,
}

impl NvthreadsRuntime {
    /// Formats `pool` for NVThreads with per-session log capacity
    /// `log_entries`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format(pool: &PmemPool, log_entries: usize) -> Result<NvthreadsRuntime, NvmError> {
        Ok(NvthreadsRuntime { registry: LogRegistry::format_pool(pool, ROOT, log_entries)? })
    }

    /// Installs on a formatted pool, sharing `alloc`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(
        pool: &PmemPool,
        alloc: NvAllocator,
        log_entries: usize,
    ) -> Result<NvthreadsRuntime, NvmError> {
        Ok(NvthreadsRuntime { registry: LogRegistry::install(pool, alloc, ROOT, log_entries)? })
    }

    /// Opens a per-thread session.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn session(&self, pool: &PmemPool) -> Result<NvthreadsSession, NvmError> {
        Ok(NvthreadsSession {
            handle: pool.handle(),
            alloc: self.registry.allocator(),
            log: self.registry.new_log(pool)?,
            fase_depth: 0,
            write_set: BTreeMap::new(),
            dirty_pages: BTreeSet::new(),
        })
    }
}

/// An NVThreads per-thread session.
#[derive(Debug)]
pub struct NvthreadsSession {
    handle: PmemHandle,
    alloc: NvAllocator,
    log: AppendLog,
    fase_depth: u32,
    write_set: BTreeMap<PAddr, u64>,
    dirty_pages: BTreeSet<usize>,
}

impl NvthreadsSession {
    fn commit(&mut self) {
        let pages = self.dirty_pages.len() as u64;
        self.handle.advance(pages * PAGE_LOG_NS);
        let entries: Vec<_> = self
            .write_set
            .iter()
            .map(|(a, v)| (Kind::Redo, *a as u64, *v, 0))
            .collect();
        if !entries.is_empty() {
            self.log.append_batch(&mut self.handle, &entries);
        }
        self.log.append(&mut self.handle, Kind::Commit, 0, 0, 0);
        for (addr, v) in std::mem::take(&mut self.write_set) {
            self.handle.write_u64(addr, v);
            self.handle.clwb(addr);
        }
        self.handle.sfence();
        self.log.reset(&mut self.handle);
        self.dirty_pages.clear();
    }
}

impl Session for NvthreadsSession {
    fn scheme_name(&self) -> &'static str {
        "NVThreads"
    }

    fn handle(&mut self) -> &mut PmemHandle {
        &mut self.handle
    }

    fn load(&mut self, addr: PAddr) -> u64 {
        if self.fase_depth > 0 {
            if let Some(v) = self.write_set.get(&addr) {
                self.handle.advance(1);
                return *v;
            }
        }
        self.handle.read_u64(addr)
    }

    fn store(&mut self, addr: PAddr, value: u64) {
        if self.fase_depth > 0 {
            if self.dirty_pages.insert(addr / PAGE_BYTES) {
                self.handle.advance(PAGE_COPY_NS);
            }
            self.write_set.insert(addr, value);
        } else {
            self.handle.write_u64(addr, value);
        }
    }

    fn alloc(&mut self, bytes: usize) -> Result<PAddr, NvmError> {
        self.alloc.alloc(&mut self.handle, bytes)
    }

    fn free(&mut self, addr: PAddr) -> Result<(), NvmError> {
        self.alloc.free(&mut self.handle, addr)
    }

    fn on_lock_acquired(&mut self, _holder: PAddr) {
        self.fase_depth += 1;
    }

    fn on_lock_releasing(&mut self, _holder: PAddr) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.commit();
        }
    }

    fn durable_begin(&mut self) {
        self.fase_depth += 1;
    }

    fn durable_end(&mut self) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.commit();
        }
    }

    fn boundary(&mut self, _outputs: &[u64]) {}
}

/// Result of [`redo_recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RedoRecovery {
    /// Committed logs replayed.
    pub replayed: usize,
    /// Uncommitted logs discarded.
    pub discarded: usize,
}

/// Replays committed-but-unretired REDO logs; discards uncommitted ones.
///
/// # Errors
/// Propagates registry attachment failures.
pub fn redo_recover(pool: &PmemPool) -> Result<RedoRecovery, NvmError> {
    let registry = LogRegistry::attach(pool, ROOT)?;
    let mut h = pool.handle();
    let mut out = RedoRecovery { replayed: 0, discarded: 0 };
    for mut log in registry.logs(pool) {
        let n = log.scan_len(&mut h);
        if n == 0 {
            continue;
        }
        let committed = (0..n).any(|i| log.read(&mut h, i).0 == Some(Kind::Commit));
        if committed {
            for i in 0..n {
                let (kind, a, b, _) = log.read(&mut h, i);
                if kind == Some(Kind::Redo) {
                    h.write_u64(a as PAddr, b);
                    h.clwb(a as PAddr);
                }
            }
            h.sfence();
            out.replayed += 1;
        } else {
            out.discarded += 1;
        }
        log.reset(&mut h);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_nvm::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_for_tests())
    }

    #[test]
    fn first_touch_pays_page_copy() {
        let p = pool();
        let rt = NvthreadsRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8192).unwrap();
        s.durable_begin();
        let t0 = s.clock_ns();
        s.store(cell, 1);
        let after_first = s.clock_ns();
        s.store(cell + 8, 2); // same page: no copy
        let after_second = s.clock_ns();
        assert!(after_first - t0 >= PAGE_COPY_NS);
        assert!(after_second - after_first < PAGE_COPY_NS);
        s.durable_end();
    }

    #[test]
    fn uncommitted_fase_discarded() {
        let p = pool();
        let rt = NvthreadsRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.store(cell, 1);
        s.handle().persist(cell, 8);
        s.durable_begin();
        s.store(cell, 99);
        drop(s);
        p.crash(0);
        let r = redo_recover(&p).unwrap();
        assert_eq!(r.replayed, 0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 1);
    }

    #[test]
    fn committed_fase_durable() {
        let p = pool();
        let rt = NvthreadsRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        s.store(cell, 7);
        assert_eq!(s.load(cell), 7, "read own buffered write");
        s.durable_end();
        drop(s);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 7);
    }
}
