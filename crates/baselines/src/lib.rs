//! Native implementations of the failure-atomicity baselines the iDO paper
//! compares against, all behind `ido-core`'s [`Session`](ido_core::Session)
//! trait so the same persistent data structure runs under every runtime —
//! exactly as the paper links each benchmark against each system.
//!
//! | Runtime | Logging | Cost signature |
//! |---|---|---|
//! | [`JustDoSession`] | ⟨pc, addr, value⟩ per store, resumption | two persist fences **per store**, plus memory-resident temporaries (no register caching) |
//! | [`AtlasSession`] | per-store UNDO + happens-before lock entries | one fence per store/lock op + dependence-tracking CPU cost; data writes-back deferred to FASE end |
//! | [`MnemosyneSession`] | REDO write set, non-temporal log appends | near-zero per-store cost, two fences per transaction, **global lock** serialization |
//! | [`NvmlSession`] | object-granularity UNDO (`TX_ADD`), deduplicated | one fence per *object*, no lock instrumentation, no dependence tracking |
//! | [`NvthreadsSession`] | page-granularity REDO at FASE end | page-copy cost at first touch + page-log cost per dirty page |
//!
//! Recovery: [`atlas_recover`] performs the consistent-cut computation and
//! rollback (log-scan cost grows with history — the mechanism behind the
//! paper's Table I), [`nvml_recover`] rolls back uncommitted transactions,
//! and [`redo_recover`] replays committed REDO logs.

#![deny(missing_docs)]

pub mod alog;
mod atlas;
mod justdo;
mod mnemosyne;
mod nvml;
mod nvthreads;
mod registry;

pub use atlas::{atlas_recover, AtlasRecovery, AtlasRuntime, AtlasSession};
pub use justdo::{JustDoRuntime, JustDoSession};
pub use mnemosyne::{MnemosyneRuntime, MnemosyneSession};
pub use nvml::{nvml_recover, NvmlRuntime, NvmlSession};
pub use nvthreads::{redo_recover, NvthreadsRuntime, NvthreadsSession};
pub use registry::LogRegistry;
