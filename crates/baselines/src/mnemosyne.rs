//! Native Mnemosyne session: REDO-logged durable transactions.
//!
//! The paper runs Mnemosyne by treating each FASE as a transaction under a
//! single global lock (its C++ transactions cannot express hand-over-hand
//! locking). Stores are buffered in a volatile write set and appended to a
//! persistent REDO log with cheap non-temporal stores; commit pays two
//! fences, publishes the write set in place, and retires the log. Program
//! locks are subsumed by the global transaction lock, which is what caps
//! Mnemosyne's scalability in Figs. 5 and 7.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use ido_core::Session;
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};

use crate::alog::{AppendLog, Kind};
use crate::registry::LogRegistry;

const ROOT: &str = "mnemosyne_sessions";

/// Factory for [`MnemosyneSession`]s; owns the global transaction lock's
/// DES availability time.
#[derive(Debug, Clone)]
pub struct MnemosyneRuntime {
    registry: LogRegistry,
    global_available_at: Arc<Mutex<u64>>,
}

impl MnemosyneRuntime {
    /// Formats `pool` for Mnemosyne with per-session REDO capacity
    /// `log_entries`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format(pool: &PmemPool, log_entries: usize) -> Result<MnemosyneRuntime, NvmError> {
        Ok(MnemosyneRuntime {
            registry: LogRegistry::format_pool(pool, ROOT, log_entries)?,
            global_available_at: Arc::new(Mutex::new(0)),
        })
    }

    /// Installs on a formatted pool, sharing `alloc`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(
        pool: &PmemPool,
        alloc: NvAllocator,
        log_entries: usize,
    ) -> Result<MnemosyneRuntime, NvmError> {
        Ok(MnemosyneRuntime {
            registry: LogRegistry::install(pool, alloc, ROOT, log_entries)?,
            global_available_at: Arc::new(Mutex::new(0)),
        })
    }

    /// Opens a per-thread session.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn session(&self, pool: &PmemPool) -> Result<MnemosyneSession, NvmError> {
        Ok(MnemosyneSession {
            handle: pool.handle(),
            alloc: self.registry.allocator(),
            log: self.registry.new_log(pool)?,
            global_available_at: Arc::clone(&self.global_available_at),
            fase_depth: 0,
            write_set: BTreeMap::new(),
        })
    }
}

/// A Mnemosyne per-thread session.
#[derive(Debug)]
pub struct MnemosyneSession {
    handle: PmemHandle,
    alloc: NvAllocator,
    log: AppendLog,
    global_available_at: Arc<Mutex<u64>>,
    fase_depth: u32,
    write_set: BTreeMap<PAddr, u64>,
}

impl MnemosyneSession {
    fn tx_begin(&mut self) {
        // Acquire the global transaction lock (DES: wait until available).
        let avail = *self.global_available_at.lock().expect("global lock time");
        if self.handle.clock_ns() < avail {
            self.handle.set_clock_ns(avail);
        }
        self.handle.advance(ido_core::LOCK_NS);
        self.write_set.clear();
    }

    fn tx_commit(&mut self) {
        // Order the NT log appends, publish the commit record.
        self.handle.sfence();
        self.log.append_nt(&mut self.handle, Kind::Commit, 0, 0);
        self.handle.sfence();
        // Apply the write set in place and persist it.
        for (addr, v) in std::mem::take(&mut self.write_set) {
            self.handle.write_u64(addr, v);
            self.handle.clwb(addr);
        }
        self.handle.sfence();
        self.log.invalidate(&mut self.handle);
        // Release the global lock.
        self.handle.advance(ido_core::LOCK_NS);
        *self.global_available_at.lock().expect("global lock time") = self.handle.clock_ns();
    }
}

impl Session for MnemosyneSession {
    fn scheme_name(&self) -> &'static str {
        "Mnemosyne"
    }

    fn handle(&mut self) -> &mut PmemHandle {
        &mut self.handle
    }

    fn load(&mut self, addr: PAddr) -> u64 {
        if self.fase_depth > 0 {
            if let Some(v) = self.write_set.get(&addr) {
                self.handle.advance(1);
                return *v;
            }
        }
        self.handle.read_u64(addr)
    }

    fn store(&mut self, addr: PAddr, value: u64) {
        if self.fase_depth > 0 {
            self.write_set.insert(addr, value);
            self.log.append_nt(&mut self.handle, Kind::Redo, addr as u64, value);
        } else {
            self.handle.write_u64(addr, value);
        }
    }

    fn alloc(&mut self, bytes: usize) -> Result<PAddr, NvmError> {
        self.alloc.alloc(&mut self.handle, bytes)
    }

    fn free(&mut self, addr: PAddr) -> Result<(), NvmError> {
        self.alloc.free(&mut self.handle, addr)
    }

    fn on_lock_acquired(&mut self, _holder: PAddr) {
        // Program locks are subsumed by the global transaction lock.
        if self.fase_depth == 0 {
            self.tx_begin();
        }
        self.fase_depth += 1;
    }

    fn on_lock_releasing(&mut self, _holder: PAddr) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.tx_commit();
        }
    }

    fn durable_begin(&mut self) {
        if self.fase_depth == 0 {
            self.tx_begin();
        }
        self.fase_depth += 1;
    }

    fn durable_end(&mut self) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.tx_commit();
        }
    }

    fn boundary(&mut self, _outputs: &[u64]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_nvm::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_for_tests())
    }

    #[test]
    fn read_own_writes_through_write_set() {
        let p = pool();
        let rt = MnemosyneRuntime::format(&p, 64).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        s.store(cell, 5);
        assert_eq!(s.load(cell), 5);
        s.durable_end();
        assert_eq!(s.load(cell), 5);
    }

    #[test]
    fn uncommitted_txn_leaves_memory_untouched() {
        let p = pool();
        let rt = MnemosyneRuntime::format(&p, 64).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.store(cell, 1);
        s.handle().persist(cell, 8);
        s.durable_begin();
        s.store(cell, 99); // buffered only
        drop(s); // crash before commit
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 1, "REDO buffering never dirties memory early");
    }

    #[test]
    fn committed_but_unapplied_txn_is_replayable() {
        let p = pool();
        let rt = MnemosyneRuntime::format(&p, 64).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        s.store(cell, 42);
        s.durable_end();
        drop(s);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 42, "commit path persists the write set");
    }

    #[test]
    fn global_lock_serializes_transactions() {
        let p = pool();
        let rt = MnemosyneRuntime::format(&p, 64).unwrap();
        let mut s1 = rt.session(&p).unwrap();
        let mut s2 = rt.session(&p).unwrap();
        let cell = s1.alloc(8).unwrap();
        s1.durable_begin();
        s1.store(cell, 1);
        s1.durable_end();
        let t1_end = s1.clock_ns();
        // s2's clock starts at 0 but its txn must wait for s1's commit.
        s2.durable_begin();
        assert!(s2.clock_ns() >= t1_end);
        s2.durable_end();
    }

    #[test]
    fn per_store_cost_is_cheap_nt_appends() {
        let p = pool();
        let rt = MnemosyneRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(128).unwrap();
        s.durable_begin();
        let f0 = s.handle().stats().fences;
        for k in 0..16 {
            s.store(cell + k * 8, k as u64);
        }
        assert_eq!(s.handle().stats().fences - f0, 0, "no fences until commit");
        s.durable_end();
        let f1 = s.handle().stats().fences;
        assert!(f1 - f0 <= 4, "commit pays a small constant number of fences");
    }
}
