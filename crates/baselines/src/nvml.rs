//! Native NVML-style session: programmer-annotated object-granularity UNDO.
//!
//! NVML (Intel's persistent memory library, now PMDK) has no compiler
//! support and no synchronization tracking: the programmer calls `TX_ADD`
//! on each object a transaction will modify. `TX_ADD` snapshots the whole
//! object into the UNDO log once per transaction (deduplicated), stores
//! happen in place, and commit flushes the data and publishes a commit
//! record. No lock instrumentation, no dependence tracking — which is why
//! it beats Atlas on single-threaded Redis (Fig. 6) while remaining
//! unusable for cross-FASE lock idioms.

use std::collections::BTreeSet;

use ido_core::Session;
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};

use crate::alog::{AppendLog, Kind};
use crate::registry::LogRegistry;

const ROOT: &str = "nvml_sessions";

/// Factory for [`NvmlSession`]s.
#[derive(Debug, Clone)]
pub struct NvmlRuntime {
    registry: LogRegistry,
}

impl NvmlRuntime {
    /// Formats `pool` for NVML with per-session log capacity `log_entries`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format(pool: &PmemPool, log_entries: usize) -> Result<NvmlRuntime, NvmError> {
        Ok(NvmlRuntime { registry: LogRegistry::format_pool(pool, ROOT, log_entries)? })
    }

    /// Installs on a formatted pool, sharing `alloc`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(
        pool: &PmemPool,
        alloc: NvAllocator,
        log_entries: usize,
    ) -> Result<NvmlRuntime, NvmError> {
        Ok(NvmlRuntime { registry: LogRegistry::install(pool, alloc, ROOT, log_entries)? })
    }

    /// Opens a per-thread session.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn session(&self, pool: &PmemPool) -> Result<NvmlSession, NvmError> {
        Ok(NvmlSession {
            handle: pool.handle(),
            alloc: self.registry.allocator(),
            log: self.registry.new_log(pool)?,
            fase_depth: 0,
            added: BTreeSet::new(),
            deferred: BTreeSet::new(),
        })
    }
}

/// An NVML per-thread session.
#[derive(Debug)]
pub struct NvmlSession {
    handle: PmemHandle,
    alloc: NvAllocator,
    log: AppendLog,
    fase_depth: u32,
    /// Objects already snapshotted this transaction (TX_ADD dedup).
    added: BTreeSet<PAddr>,
    deferred: BTreeSet<PAddr>,
}

impl NvmlSession {
    fn tx_add(&mut self, addr: PAddr) {
        let obj = addr & !63; // object = containing cache line
        if !self.added.insert(obj) {
            return;
        }
        let mut entries = Vec::with_capacity(8);
        for w in 0..8 {
            let a = obj + w * 8;
            let old = self.handle.read_u64(a);
            entries.push((Kind::Undo, a as u64, old, 0));
        }
        self.log.append_batch(&mut self.handle, &entries); // one fence per object
    }

    fn tx_commit(&mut self) {
        for addr in std::mem::take(&mut self.deferred) {
            self.handle.clwb(addr);
        }
        self.handle.sfence();
        self.log.append(&mut self.handle, Kind::Commit, 0, 0, 0);
        self.added.clear();
    }
}

impl Session for NvmlSession {
    fn scheme_name(&self) -> &'static str {
        "NVML"
    }

    fn handle(&mut self) -> &mut PmemHandle {
        &mut self.handle
    }

    fn load(&mut self, addr: PAddr) -> u64 {
        self.handle.read_u64(addr)
    }

    fn store(&mut self, addr: PAddr, value: u64) {
        if self.fase_depth > 0 {
            self.tx_add(addr);
            self.handle.write_u64(addr, value);
            self.deferred.insert(addr);
        } else {
            self.handle.write_u64(addr, value);
        }
    }

    fn alloc(&mut self, bytes: usize) -> Result<PAddr, NvmError> {
        self.alloc.alloc(&mut self.handle, bytes)
    }

    fn free(&mut self, addr: PAddr) -> Result<(), NvmError> {
        self.alloc.free(&mut self.handle, addr)
    }

    fn on_lock_acquired(&mut self, _holder: PAddr) {
        // NVML does not instrument locks; transactions are programmer
        // delineated. We still honor the FASE bracket so the same structure
        // code runs unchanged.
        self.durable_begin();
    }

    fn on_lock_releasing(&mut self, _holder: PAddr) {
        self.durable_end();
    }

    fn durable_begin(&mut self) {
        if self.fase_depth == 0 {
            self.log.append(&mut self.handle, Kind::Begin, 0, 0, 0);
            self.added.clear();
        }
        self.fase_depth += 1;
    }

    fn durable_end(&mut self) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.tx_commit();
        }
    }

    fn boundary(&mut self, _outputs: &[u64]) {}
}

/// Result of [`nvml_recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmlRecovery {
    /// Uncommitted transactions rolled back.
    pub rolled_back: usize,
    /// UNDO entries applied.
    pub undo_applied: usize,
    /// Total log entries scanned.
    pub entries_scanned: usize,
}

/// Rolls back each session's uncommitted trailing transaction.
///
/// # Errors
/// Propagates registry attachment failures.
pub fn nvml_recover(pool: &PmemPool) -> Result<NvmlRecovery, NvmError> {
    let registry = LogRegistry::attach(pool, ROOT)?;
    let mut h = pool.handle();
    let mut out = NvmlRecovery { rolled_back: 0, undo_applied: 0, entries_scanned: 0 };
    for mut log in registry.logs(pool) {
        let n = log.scan_len(&mut h);
        out.entries_scanned += n;
        let mut suffix = 0;
        for i in 0..n {
            if log.read(&mut h, i).0 == Some(Kind::Commit) {
                suffix = i + 1;
            }
        }
        let mut any = false;
        for i in (suffix..n).rev() {
            let (kind, a, b, _) = log.read(&mut h, i);
            if kind == Some(Kind::Undo) {
                h.write_u64(a as PAddr, b);
                h.clwb(a as PAddr);
                out.undo_applied += 1;
                any = true;
            }
        }
        if any {
            h.sfence();
            out.rolled_back += 1;
        }
        log.reset(&mut h);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_nvm::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_for_tests())
    }

    #[test]
    fn tx_add_dedups_objects() {
        let p = pool();
        let rt = NvmlRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(64).unwrap();
        s.durable_begin();
        let f0 = s.handle().stats().fences;
        s.store(cell, 1);
        s.store(cell + 8, 2); // same object: no new snapshot
        s.store(cell + 16, 3);
        assert_eq!(s.handle().stats().fences - f0, 1, "one TX_ADD fence per object");
        s.durable_end();
    }

    #[test]
    fn uncommitted_tx_rolls_back() {
        let p = pool();
        let rt = NvmlRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.store(cell, 1);
        s.handle().persist(cell, 8);
        s.durable_begin();
        s.store(cell, 99);
        s.handle().persist(cell, 8);
        drop(s);
        p.crash(0);
        let r = nvml_recover(&p).unwrap();
        assert_eq!(r.rolled_back, 1);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 1);
    }

    #[test]
    fn committed_tx_survives() {
        let p = pool();
        let rt = NvmlRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        s.store(cell, 5);
        s.durable_end();
        drop(s);
        p.crash(0);
        let r = nvml_recover(&p).unwrap();
        assert_eq!(r.rolled_back, 0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 5);
    }
}
