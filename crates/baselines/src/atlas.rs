//! Native Atlas session: per-store UNDO logging with cross-FASE dependence
//! tracking and consistent-cut rollback recovery.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ido_core::Session;
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};
use ido_trace::Category;

use crate::alog::{AppendLog, Kind};
use crate::registry::LogRegistry;

const ROOT: &str = "atlas_sessions";
/// Per-store CPU cost of Atlas's compiler-inserted persistent-access
/// detection and dependence bookkeeping (the overhead Section V-A blames
/// for Atlas's single-threaded cost on Redis).
pub const TRACKING_NS: u64 = 500;

/// Factory for [`AtlasSession`]s; owns the global timestamp counter and
/// the last-release table used for happens-before tracking.
#[derive(Debug, Clone)]
pub struct AtlasRuntime {
    registry: LogRegistry,
    stamp: Arc<AtomicU64>,
    last_release: Arc<Mutex<HashMap<PAddr, u64>>>,
}

impl AtlasRuntime {
    /// Formats `pool` for Atlas with per-session log capacity
    /// `log_entries`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format(pool: &PmemPool, log_entries: usize) -> Result<AtlasRuntime, NvmError> {
        Ok(AtlasRuntime {
            registry: LogRegistry::format_pool(pool, ROOT, log_entries)?,
            stamp: Arc::new(AtomicU64::new(1)),
            last_release: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Installs on a formatted pool, sharing `alloc`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(
        pool: &PmemPool,
        alloc: NvAllocator,
        log_entries: usize,
    ) -> Result<AtlasRuntime, NvmError> {
        Ok(AtlasRuntime {
            registry: LogRegistry::install(pool, alloc, ROOT, log_entries)?,
            stamp: Arc::new(AtomicU64::new(1)),
            last_release: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// Opens a per-thread session.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn session(&self, pool: &PmemPool) -> Result<AtlasSession, NvmError> {
        Ok(AtlasSession {
            handle: pool.handle(),
            alloc: self.registry.allocator(),
            log: self.registry.new_log(pool)?,
            stamp: Arc::clone(&self.stamp),
            last_release: Arc::clone(&self.last_release),
            fase_depth: 0,
            deferred: BTreeSet::new(),
        })
    }
}

/// An Atlas per-thread session.
#[derive(Debug)]
pub struct AtlasSession {
    handle: PmemHandle,
    alloc: NvAllocator,
    log: AppendLog,
    stamp: Arc<AtomicU64>,
    last_release: Arc<Mutex<HashMap<PAddr, u64>>>,
    fase_depth: u32,
    /// FASE store addresses; Atlas defers data write-back to FASE end.
    deferred: BTreeSet<PAddr>,
}

impl AtlasSession {
    fn next_stamp(&self) -> u64 {
        self.stamp.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn fase_end(&mut self) {
        // Flush the FASE's deferred stores, then publish the commit record.
        for addr in std::mem::take(&mut self.deferred) {
            self.handle.clwb(addr);
        }
        self.handle.sfence();
        let stamp = self.next_stamp();
        self.log.append(&mut self.handle, Kind::Commit, 0, 0, stamp);
    }
}

impl Session for AtlasSession {
    fn scheme_name(&self) -> &'static str {
        "Atlas"
    }

    fn handle(&mut self) -> &mut PmemHandle {
        &mut self.handle
    }

    fn load(&mut self, addr: PAddr) -> u64 {
        self.handle.read_u64(addr)
    }

    fn store(&mut self, addr: PAddr, value: u64) {
        if self.fase_depth > 0 {
            self.handle.advance_as(Category::Log, TRACKING_NS);
            let old = self.handle.read_u64(addr);
            let stamp = self.next_stamp();
            self.log.append(&mut self.handle, Kind::Undo, addr as u64, old, stamp);
            self.handle.write_u64(addr, value);
            self.deferred.insert(addr);
        } else {
            self.handle.write_u64(addr, value);
        }
    }

    fn alloc(&mut self, bytes: usize) -> Result<PAddr, NvmError> {
        self.alloc.alloc(&mut self.handle, bytes)
    }

    fn free(&mut self, addr: PAddr) -> Result<(), NvmError> {
        self.alloc.free(&mut self.handle, addr)
    }

    fn on_lock_acquired(&mut self, holder: PAddr) {
        if self.fase_depth == 0 {
            let stamp = self.next_stamp();
            self.log.append(&mut self.handle, Kind::Begin, 0, 0, stamp);
        }
        self.fase_depth += 1;
        self.handle.advance_as(Category::Log, TRACKING_NS);
        let observed = *self
            .last_release
            .lock()
            .expect("release table")
            .get(&holder)
            .unwrap_or(&0);
        let stamp = self.next_stamp();
        self.log.append(&mut self.handle, Kind::LockAcquire, holder as u64, observed, stamp);
    }

    fn on_lock_releasing(&mut self, holder: PAddr) {
        self.handle.advance_as(Category::Log, TRACKING_NS);
        let stamp = self.next_stamp();
        self.last_release.lock().expect("release table").insert(holder, stamp);
        self.log.append(&mut self.handle, Kind::LockRelease, holder as u64, stamp, stamp);
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.fase_end();
        }
    }

    fn durable_begin(&mut self) {
        if self.fase_depth == 0 {
            let stamp = self.next_stamp();
            self.log.append(&mut self.handle, Kind::Begin, 0, 0, stamp);
        }
        self.fase_depth += 1;
    }

    fn durable_end(&mut self) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.fase_end();
        }
    }

    fn boundary(&mut self, _outputs: &[u64]) {
        // Atlas logs per store; region boundaries are iDO-specific.
    }
}

/// Result of [`atlas_recover`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtlasRecovery {
    /// FASEs rolled back (interrupted + dependence-invalidated).
    pub rolled_back: usize,
    /// UNDO entries applied.
    pub undo_applied: usize,
    /// Total log entries scanned (grows with pre-crash history — Table I).
    pub entries_scanned: usize,
    /// Simulated nanoseconds spent scanning and rolling back.
    pub scan_ns: u64,
}

/// Atlas recovery: scan all session logs, compute the consistent cut via
/// the recorded happens-before edges, and roll back invalidated FASEs in
/// reverse timestamp order.
///
/// # Errors
/// Propagates registry attachment failures.
pub fn atlas_recover(pool: &PmemPool) -> Result<AtlasRecovery, NvmError> {
    let registry = LogRegistry::attach(pool, ROOT)?;
    let mut h = pool.handle();
    let t0 = h.clock_ns();

    struct Fase {
        committed: bool,
        undo: Vec<(u64, u64, u64)>,
        acquires: Vec<(u64, u64)>,
        releases: Vec<(u64, u64)>,
    }
    let mut fases: Vec<Fase> = Vec::new();
    let mut scanned = 0;
    for log in registry.logs(pool) {
        let n = log.scan_len(&mut h);
        scanned += n;
        let mut cur: Option<Fase> = None;
        for i in 0..n {
            let (kind, a, b, stamp) = log.read(&mut h, i);
            match kind {
                Some(Kind::Begin) => {
                    if let Some(f) = cur.take() {
                        fases.push(f);
                    }
                    cur = Some(Fase {
                        committed: false,
                        undo: Vec::new(),
                        acquires: Vec::new(),
                        releases: Vec::new(),
                    });
                }
                Some(Kind::Undo) => {
                    if let Some(f) = cur.as_mut() {
                        f.undo.push((a, b, stamp));
                    }
                }
                Some(Kind::LockAcquire) => {
                    if let Some(f) = cur.as_mut() {
                        f.acquires.push((a, b));
                    }
                }
                Some(Kind::LockRelease) => {
                    if let Some(f) = cur.as_mut() {
                        f.releases.push((a, b));
                    }
                }
                Some(Kind::Commit) => {
                    if let Some(mut f) = cur.take() {
                        f.committed = true;
                        fases.push(f);
                    }
                }
                _ => {}
            }
        }
        if let Some(f) = cur.take() {
            fases.push(f);
        }
    }

    // Consistent cut: interrupted FASEs invalidate their dependents.
    let mut release_owner: HashMap<(u64, u64), usize> = HashMap::new();
    for (fi, f) in fases.iter().enumerate() {
        for &(lock, stamp) in &f.releases {
            release_owner.insert((lock, stamp), fi);
        }
    }
    let mut undone: Vec<bool> = fases.iter().map(|f| !f.committed).collect();
    loop {
        let mut changed = false;
        for fi in 0..fases.len() {
            if undone[fi] {
                continue;
            }
            for &(lock, observed) in &fases[fi].acquires {
                if observed != 0 {
                    if let Some(&owner) = release_owner.get(&(lock, observed)) {
                        if undone[owner] {
                            undone[fi] = true;
                            changed = true;
                            break;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut rollback: Vec<(u64, u64, u64)> = Vec::new();
    for (fi, f) in fases.iter().enumerate() {
        if undone[fi] {
            rollback.extend(&f.undo);
        }
    }
    rollback.sort_by_key(|&(_, _, s)| std::cmp::Reverse(s));
    for &(addr, old, _) in &rollback {
        h.write_u64(addr as PAddr, old);
        h.clwb(addr as PAddr);
    }
    h.sfence();
    for mut log in registry.logs(pool) {
        log.reset(&mut h);
    }

    Ok(AtlasRecovery {
        rolled_back: undone.iter().filter(|u| **u).count(),
        undo_applied: rollback.len(),
        entries_scanned: scanned,
        scan_ns: h.clock_ns() - t0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_core::SimLock;
    use ido_nvm::PoolConfig;

    fn pool() -> PmemPool {
        PmemPool::new(PoolConfig::small_for_tests())
    }

    #[test]
    fn committed_fase_survives_crash() {
        let p = pool();
        let rt = AtlasRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let mut lock = SimLock::new(&mut s).unwrap();
        let cell = s.alloc(8).unwrap();
        lock.acquire(&mut s);
        s.store(cell, 7);
        lock.release(&mut s);
        drop(s);
        p.crash(0);
        let r = atlas_recover(&p).unwrap();
        assert_eq!(r.rolled_back, 0);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 7);
    }

    #[test]
    fn interrupted_fase_is_rolled_back() {
        let p = pool();
        let rt = AtlasRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let mut lock = SimLock::new(&mut s).unwrap();
        let cell = s.alloc(8).unwrap();
        s.store(cell, 1); // pre-FASE init
        s.handle().persist(cell, 8);
        lock.acquire(&mut s);
        s.store(cell, 99);
        s.handle().persist(cell, 8); // evil: store already persisted
        drop(s); // crash mid-FASE
        p.crash(0);
        let r = atlas_recover(&p).unwrap();
        assert_eq!(r.rolled_back, 1);
        assert_eq!(r.undo_applied, 1);
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 1, "UNDO restores the pre-FASE value");
    }

    #[test]
    fn dependent_committed_fase_is_also_rolled_back() {
        // FASE A (interrupted) releases a lock; FASE B acquires it, sees
        // A's value, and commits. Atlas must roll back both.
        let p = pool();
        let rt = AtlasRuntime::format(&p, 256).unwrap();
        let mut sa = rt.session(&p).unwrap();
        let mut sb = rt.session(&p).unwrap();
        let mut l1 = SimLock::new(&mut sa).unwrap();
        let mut l2 = SimLock::new(&mut sa).unwrap();
        let cell = sa.alloc(16).unwrap();

        // A: cross-lock FASE that releases l1 mid-FASE and never finishes.
        l1.acquire(&mut sa);
        l2.acquire(&mut sa);
        sa.store(cell, 10);
        l1.release(&mut sa); // depth 2 -> 1: still inside the FASE
        // (crash before releasing l2)

        // B: acquires l1 after A released it -> happens-before edge.
        l1.acquire(&mut sb);
        let seen = sb.load(cell);
        sb.store(cell + 8, seen);
        l1.release(&mut sb); // B commits

        drop(sa);
        drop(sb);
        p.crash(0);
        let r = atlas_recover(&p).unwrap();
        assert_eq!(r.rolled_back, 2, "the committed dependent must also roll back");
        let mut h = p.handle();
        assert_eq!(h.read_u64(cell), 0);
        assert_eq!(h.read_u64(cell + 8), 0);
    }

    #[test]
    fn log_scan_grows_with_history() {
        let p = pool();
        let rt = AtlasRuntime::format(&p, 4096).unwrap();
        let mut s = rt.session(&p).unwrap();
        let mut lock = SimLock::new(&mut s).unwrap();
        let cell = s.alloc(8).unwrap();
        for _ in 0..50 {
            lock.acquire(&mut s);
            s.store(cell, 1);
            lock.release(&mut s);
        }
        drop(s);
        p.crash(0);
        let r = atlas_recover(&p).unwrap();
        assert!(r.entries_scanned >= 50 * 4, "every FASE leaves log entries to scan");
        assert_eq!(r.rolled_back, 0);
    }

    #[test]
    fn one_fence_per_store_plus_tracking() {
        let p = pool();
        let rt = AtlasRuntime::format(&p, 256).unwrap();
        let mut s = rt.session(&p).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        let f0 = s.handle().stats().fences;
        s.store(cell, 1);
        assert_eq!(s.handle().stats().fences - f0, 1);
        s.durable_end();
    }
}
