//! Append-only persistent event log shared by the native baselines.
//!
//! Entries are 32 bytes — `(kind, a, b, stamp)` — matching Atlas's
//! 32-bytes-per-store format (at most two entries per cache-line
//! write-back, Section IV-B of the iDO paper). An entry is *valid by
//! content*: its kind word is nonzero, so an append publishes with a single
//! persist fence and recovery scans until the first zero kind.

use ido_nvm::{PmemHandle, PAddr};
use ido_trace::EventKind;

/// Entry kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub enum Kind {
    /// UNDO: `(addr, old_value)`.
    Undo = 1,
    /// FASE/transaction begin.
    Begin = 2,
    /// FASE/transaction commit.
    Commit = 3,
    /// Lock acquired: `(lock, observed release stamp)`.
    LockAcquire = 4,
    /// Lock released: `(lock, stamp)`.
    LockRelease = 5,
    /// REDO: `(addr, new_value)`.
    Redo = 6,
}

impl Kind {
    /// Decodes a stored kind word.
    pub fn from_word(w: u64) -> Option<Kind> {
        match w {
            1 => Some(Kind::Undo),
            2 => Some(Kind::Begin),
            3 => Some(Kind::Commit),
            4 => Some(Kind::LockAcquire),
            5 => Some(Kind::LockRelease),
            6 => Some(Kind::Redo),
            _ => None,
        }
    }
}

/// Bytes per entry.
pub const ENTRY_BYTES: usize = 32;

/// An append-only log region with a volatile write cursor.
#[derive(Debug, Clone)]
pub struct AppendLog {
    base: PAddr,
    capacity: usize,
    cursor: usize,
}

impl AppendLog {
    /// Views (and, on first use, owns the cursor of) a log region. The
    /// cursor starts at the scanned end so re-attachment appends after
    /// surviving entries.
    pub fn attach(h: &mut PmemHandle, base: PAddr, capacity: usize) -> AppendLog {
        let mut log = AppendLog { base, capacity, cursor: 0 };
        log.cursor = log.scan_len(h);
        log
    }

    /// Bytes required for `capacity` entries (plus alignment slack).
    pub fn size_for(capacity: usize) -> usize {
        ENTRY_BYTES + capacity * ENTRY_BYTES
    }

    /// Base address.
    pub fn base(&self) -> PAddr {
        self.base
    }

    /// Entries appended (volatile view).
    pub fn len(&self) -> usize {
        self.cursor
    }

    /// True when no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.cursor == 0
    }

    fn entry_addr(&self, i: usize) -> PAddr {
        assert!(i < self.capacity, "append log overflow");
        // Round up to a 32-byte boundary: the allocator hands out 8-aligned
        // regions, and an entry straddling two cache lines breaks the
        // single-write-back publication (a crash can persist the half with
        // the kind word but lose the half with the payload).
        let entries = (self.base + (ENTRY_BYTES - 1)) & !(ENTRY_BYTES - 1);
        entries + i * ENTRY_BYTES
    }

    /// Entries valid after a crash (content scan).
    pub fn scan_len(&self, h: &mut PmemHandle) -> usize {
        for i in 0..self.capacity {
            if Kind::from_word(h.read_u64(self.entry_addr(i))).is_none() {
                return i;
            }
        }
        self.capacity
    }

    /// Appends one entry: four cached stores, one write-back, one fence.
    pub fn append(&mut self, h: &mut PmemHandle, kind: Kind, a: u64, b: u64, stamp: u64) {
        self.append_batch(h, &[(kind, a, b, stamp)]);
    }

    /// Appends several entries under a single fence.
    pub fn append_batch(&mut self, h: &mut PmemHandle, entries: &[(Kind, u64, u64, u64)]) {
        h.begin_log();
        for (k, (kind, a, b, stamp)) in entries.iter().enumerate() {
            let e = self.entry_addr(self.cursor + k);
            h.write_u64(e + 8, *a);
            h.write_u64(e + 16, *b);
            h.write_u64(e + 24, *stamp);
            h.write_u64(e, *kind as u64); // kind last: torn entries invisible
            h.clwb(e);
        }
        h.end_log();
        h.sfence();
        self.cursor += entries.len();
        h.trace_event(
            EventKind::LogAppend,
            entries.len() as u64,
            (entries.len() * ENTRY_BYTES) as u64,
        );
    }

    /// Appends one entry with non-temporal stores and **no fence**
    /// (Mnemosyne's raw-word log mode; the commit fence orders them).
    pub fn append_nt(&mut self, h: &mut PmemHandle, kind: Kind, a: u64, b: u64) {
        let e = self.entry_addr(self.cursor);
        h.begin_log();
        h.nt_store_u64(e + 8, a);
        h.nt_store_u64(e + 16, b);
        h.nt_store_u64(e + 24, 0);
        h.nt_store_u64(e, kind as u64);
        h.end_log();
        self.cursor += 1;
        h.trace_event(EventKind::LogAppend, 1, ENTRY_BYTES as u64);
    }

    /// Reads entry `i`.
    pub fn read(&self, h: &mut PmemHandle, i: usize) -> (Option<Kind>, u64, u64, u64) {
        let e = self.entry_addr(i);
        (
            Kind::from_word(h.read_u64(e)),
            h.read_u64(e + 8),
            h.read_u64(e + 16),
            h.read_u64(e + 24),
        )
    }

    /// Durably retires the log (zeroes the used prefix).
    pub fn reset(&mut self, h: &mut PmemHandle) {
        let used = self.cursor.max(self.scan_len(h));
        h.begin_log();
        for i in 0..used {
            let e = self.entry_addr(i);
            h.write_u64(e, 0);
            h.clwb(e);
        }
        h.end_log();
        h.sfence();
        self.cursor = 0;
    }

    /// Cheaply invalidates the whole log by zeroing entry 0 (the content
    /// scan then sees an empty log). Used on the Mnemosyne commit path.
    pub fn invalidate(&mut self, h: &mut PmemHandle) {
        // Zero every used entry, not just entry 0: the next append
        // re-validates slot 0, which would make a content scan read the
        // stale tail as a phantom committed suffix.
        h.begin_log();
        for i in 0..self.cursor {
            h.nt_store_u64(self.entry_addr(i), 0);
        }
        h.end_log();
        h.sfence();
        self.cursor = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_nvm::{PmemPool, PoolConfig};

    fn setup() -> (PmemPool, AppendLog) {
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        let log = AppendLog::attach(&mut h, 4096, 64);
        (p, log)
    }

    #[test]
    fn entries_never_straddle_cache_lines() {
        // Regression (crash-oracle finding in the VM's twin log layout):
        // with an allocator-granted 8-aligned base, unaligned entries span
        // two lines and the single per-entry clwb persists only one of
        // them — a crash can leave a valid kind word with torn payload.
        let p = PmemPool::new(PoolConfig::small_for_tests());
        let mut h = p.handle();
        for base in [4096usize, 4096 + 8, 4096 + 16, 4096 + 24, 4096 + 40] {
            let log = AppendLog::attach(&mut h, base, 8);
            for i in 0..8 {
                let e = log.entry_addr(i);
                assert_eq!(
                    e / 64,
                    (e + ENTRY_BYTES - 1) / 64,
                    "entry {i} at base {base:#x} straddles a line"
                );
            }
            assert!(log.entry_addr(7) + ENTRY_BYTES <= base + AppendLog::size_for(8));
        }
    }

    #[test]
    fn append_read_roundtrip() {
        let (p, mut log) = setup();
        let mut h = p.handle();
        log.append(&mut h, Kind::Undo, 1, 2, 3);
        log.append(&mut h, Kind::Commit, 0, 0, 4);
        assert_eq!(log.len(), 2);
        assert_eq!(log.read(&mut h, 0), (Some(Kind::Undo), 1, 2, 3));
        assert_eq!(log.read(&mut h, 1), (Some(Kind::Commit), 0, 0, 4));
    }

    #[test]
    fn fenced_entries_survive_crash_and_cursor_reattaches() {
        let (p, mut log) = setup();
        let mut h = p.handle();
        log.append(&mut h, Kind::Undo, 1, 2, 3);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        let log2 = AppendLog::attach(&mut h, 4096, 64);
        assert_eq!(log2.len(), 1);
        let _ = log;
    }

    #[test]
    fn nt_append_is_durable_without_fence() {
        let (p, mut log) = setup();
        let mut h = p.handle();
        log.append_nt(&mut h, Kind::Redo, 9, 10);
        drop(h);
        p.crash(0);
        let mut h = p.handle();
        assert_eq!(log.scan_len(&mut h), 1);
    }

    #[test]
    fn reset_and_invalidate_empty_the_scan() {
        let (p, mut log) = setup();
        let mut h = p.handle();
        log.append(&mut h, Kind::Undo, 1, 2, 3);
        log.reset(&mut h);
        assert_eq!(log.scan_len(&mut h), 0);
        log.append(&mut h, Kind::Redo, 4, 5, 6);
        log.invalidate(&mut h);
        assert_eq!(log.scan_len(&mut h), 0);
        assert!(log.is_empty());
    }

    #[test]
    fn batch_uses_single_fence() {
        let (p, mut log) = setup();
        let mut h = p.handle();
        let f0 = h.stats().fences;
        log.append_batch(
            &mut h,
            &[(Kind::Undo, 1, 1, 1), (Kind::Undo, 2, 2, 2), (Kind::Undo, 3, 3, 3)],
        );
        assert_eq!(h.stats().fences - f0, 1);
    }
}
