//! Native JUSTDO logging session.
//!
//! JUSTDO persists a ⟨pc, addr, value⟩ record immediately before every
//! store, and the store itself must persist before the next record can
//! overwrite the log — two persist-fence sequences per store. Lock
//! operations update a lock-intention and a lock-ownership record, costing
//! two fences each. The original system additionally forbids caching FASE
//! state in registers; we charge that as a fixed per-access CPU overhead
//! (`NO_REG_CACHE_NS`), matching how the paper's improved JUSTDO (with the
//! stack already in NVM) still pays for memory-resident temporaries.

use ido_core::Session;
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};

use crate::registry::LogRegistry;

const ROOT: &str = "justdo_sessions";
/// Extra CPU cost per persistent access from the no-register-caching rule.
pub const NO_REG_CACHE_NS: u64 = 12;

/// Factory for [`JustDoSession`]s.
#[derive(Debug, Clone)]
pub struct JustDoRuntime {
    registry: LogRegistry,
}

impl JustDoRuntime {
    /// Formats `pool` for JUSTDO.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format(pool: &PmemPool) -> Result<JustDoRuntime, NvmError> {
        Ok(JustDoRuntime { registry: LogRegistry::format_pool(pool, ROOT, 8)? })
    }

    /// Installs on a formatted pool, sharing `alloc`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(pool: &PmemPool, alloc: NvAllocator) -> Result<JustDoRuntime, NvmError> {
        Ok(JustDoRuntime { registry: LogRegistry::install(pool, alloc, ROOT, 8)? })
    }

    /// Opens a per-thread session.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn session(&self, pool: &PmemPool) -> Result<JustDoSession, NvmError> {
        let log = self.registry.new_log(pool)?;
        Ok(JustDoSession {
            handle: pool.handle(),
            alloc: self.registry.allocator(),
            log_base: log.base(),
            fase_depth: 0,
        })
    }
}

/// A JUSTDO per-thread session. The log region holds the single active
/// ⟨pc, addr, value⟩ record (JUSTDO overwrites in place) plus the two
/// lock-tracking words.
#[derive(Debug)]
pub struct JustDoSession {
    handle: PmemHandle,
    alloc: NvAllocator,
    log_base: PAddr,
    fase_depth: u32,
}

impl JustDoSession {
    fn record_addr(&self) -> PAddr {
        self.log_base // (active, addr, value) share the first line
    }

    fn lock_words(&self) -> PAddr {
        self.log_base + 64
    }
}

impl Session for JustDoSession {
    fn scheme_name(&self) -> &'static str {
        "JUSTDO"
    }

    fn handle(&mut self) -> &mut PmemHandle {
        &mut self.handle
    }

    fn load(&mut self, addr: PAddr) -> u64 {
        self.handle.advance(NO_REG_CACHE_NS);
        self.handle.read_u64(addr)
    }

    fn store(&mut self, addr: PAddr, value: u64) {
        if self.fase_depth > 0 {
            // Fence 1: the log record persists before the store.
            let rec = self.record_addr();
            self.handle.write_u64(rec + 8, addr as u64);
            self.handle.write_u64(rec + 16, value);
            self.handle.write_u64(rec, 1); // active marker (the "pc")
            self.handle.clwb(rec);
            self.handle.sfence();
            // Fence 2: the store persists before the next record.
            self.handle.advance(NO_REG_CACHE_NS);
            self.handle.write_u64(addr, value);
            self.handle.clwb(addr);
            self.handle.sfence();
        } else {
            self.handle.write_u64(addr, value);
        }
    }

    fn alloc(&mut self, bytes: usize) -> Result<PAddr, NvmError> {
        self.alloc.alloc(&mut self.handle, bytes)
    }

    fn free(&mut self, addr: PAddr) -> Result<(), NvmError> {
        self.alloc.free(&mut self.handle, addr)
    }

    fn on_lock_acquired(&mut self, holder: PAddr) {
        self.fase_depth += 1;
        // Intention record, fence; ownership record, fence.
        let lw = self.lock_words();
        self.handle.write_u64(lw, holder as u64);
        self.handle.clwb(lw);
        self.handle.sfence();
        self.handle.write_u64(lw + 8, 1);
        self.handle.clwb(lw + 8);
        self.handle.sfence();
    }

    fn on_lock_releasing(&mut self, _holder: PAddr) {
        let lw = self.lock_words();
        self.handle.write_u64(lw + 8, 0);
        self.handle.clwb(lw + 8);
        self.handle.sfence();
        self.handle.write_u64(lw, 0);
        self.handle.clwb(lw);
        self.handle.sfence();
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.durable_end_inner();
        }
    }

    fn durable_begin(&mut self) {
        self.fase_depth += 1;
    }

    fn durable_end(&mut self) {
        self.fase_depth = self.fase_depth.saturating_sub(1);
        if self.fase_depth == 0 {
            self.durable_end_inner();
        }
    }

    fn boundary(&mut self, _outputs: &[u64]) {
        // JUSTDO has no region concept: every store is its own log event.
    }
}

impl JustDoSession {
    fn durable_end_inner(&mut self) {
        let rec = self.record_addr();
        self.handle.write_u64(rec, 0);
        self.handle.clwb(rec);
        self.handle.sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_core::SimLock;
    use ido_nvm::PoolConfig;

    #[test]
    fn two_fences_per_store_inside_fase() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let rt = JustDoRuntime::format(&pool).unwrap();
        let mut s = rt.session(&pool).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        let f0 = s.handle().stats().fences;
        s.store(cell, 1);
        assert_eq!(s.handle().stats().fences - f0, 2);
        s.durable_end();
    }

    #[test]
    fn stores_inside_fase_are_immediately_durable() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let rt = JustDoRuntime::format(&pool).unwrap();
        let mut s = rt.session(&pool).unwrap();
        let cell = s.alloc(8).unwrap();
        s.durable_begin();
        s.store(cell, 42);
        drop(s); // crash before durable_end
        pool.crash(0);
        let mut h = pool.handle();
        assert_eq!(h.read_u64(cell), 42);
    }

    #[test]
    fn lock_ops_cost_two_fences_each() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let rt = JustDoRuntime::format(&pool).unwrap();
        let mut s = rt.session(&pool).unwrap();
        let mut lock = SimLock::new(&mut s).unwrap();
        let f0 = s.handle().stats().fences;
        lock.acquire(&mut s);
        assert_eq!(s.handle().stats().fences - f0, 2);
    }

    #[test]
    fn stores_outside_fase_are_plain() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let rt = JustDoRuntime::format(&pool).unwrap();
        let mut s = rt.session(&pool).unwrap();
        let cell = s.alloc(8).unwrap();
        let f0 = s.handle().stats().fences;
        s.store(cell, 1);
        assert_eq!(s.handle().stats().fences, f0);
    }
}
