//! Per-scheme persistent session registries.
//!
//! Each baseline runtime registers its per-thread logs under a named root
//! so recovery can find them after a crash — the analog of the iDO paper's
//! global linked list of `iDO_Log`s (Fig. 3).

use ido_nvm::alloc::NvAllocator;
use ido_nvm::root::RootTable;
use ido_nvm::{NvmError, PmemHandle, PmemPool, PAddr};

use crate::alog::AppendLog;

/// Maximum sessions per registry.
pub const MAX_SESSIONS: usize = 256;

/// A registry of per-session append logs under one root name.
#[derive(Debug, Clone)]
pub struct LogRegistry {
    alloc: NvAllocator,
    base: PAddr,
    capacity_entries: usize,
}

impl LogRegistry {
    /// Formats the pool (root table + allocator) and installs a registry.
    /// Call once per pool; sibling registries should use
    /// [`LogRegistry::install`].
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn format_pool(
        pool: &PmemPool,
        root: &str,
        capacity_entries: usize,
    ) -> Result<LogRegistry, NvmError> {
        let mut h = pool.handle();
        RootTable::format(&mut h);
        let alloc = NvAllocator::format(&mut h, pool.size());
        Self::install_with(&mut h, alloc, root, capacity_entries)
    }

    /// Installs a registry on an already formatted pool.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn install(
        pool: &PmemPool,
        alloc: NvAllocator,
        root: &str,
        capacity_entries: usize,
    ) -> Result<LogRegistry, NvmError> {
        let mut h = pool.handle();
        RootTable::attach(&mut h)?;
        Self::install_with(&mut h, alloc, root, capacity_entries)
    }

    fn install_with(
        h: &mut PmemHandle,
        alloc: NvAllocator,
        root: &str,
        capacity_entries: usize,
    ) -> Result<LogRegistry, NvmError> {
        let base = alloc.alloc(h, 16 + MAX_SESSIONS * 8)?;
        h.write_u64(base, 0);
        h.write_u64(base + 8, capacity_entries as u64);
        h.persist(base, 16);
        RootTable.set_root(h, root, base)?;
        Ok(LogRegistry { alloc, base, capacity_entries })
    }

    /// Re-attaches to a registry after a crash.
    ///
    /// # Errors
    /// Returns [`NvmError::CorruptHeader`] if the root is missing.
    pub fn attach(pool: &PmemPool, root: &str) -> Result<LogRegistry, NvmError> {
        let mut h = pool.handle();
        RootTable::attach(&mut h)?;
        let base = RootTable.root(&mut h, root).ok_or(NvmError::CorruptHeader {
            detail: format!("missing registry root `{root}`"),
        })?;
        let capacity_entries = h.read_u64(base + 8) as usize;
        Ok(LogRegistry { alloc: NvAllocator::attach(), base, capacity_entries })
    }

    /// The shared persistent allocator.
    pub fn allocator(&self) -> NvAllocator {
        self.alloc.clone()
    }

    /// Allocates, registers, and returns a new session log.
    ///
    /// # Errors
    /// Propagates allocation failures; errors when the registry is full.
    pub fn new_log(&self, pool: &PmemPool) -> Result<AppendLog, NvmError> {
        let mut h = pool.handle();
        let n = h.read_u64(self.base) as usize;
        if n >= MAX_SESSIONS {
            return Err(NvmError::RootTableFull);
        }
        let bytes = AppendLog::size_for(self.capacity_entries);
        let log_base = self.alloc.alloc(&mut h, bytes)?;
        // Zero the first entry so the content scan sees an empty log.
        h.write_u64(log_base, 0);
        h.persist(log_base, 8);
        h.write_u64(self.base + 16 + n * 8, log_base as u64);
        h.persist(self.base + 16 + n * 8, 8);
        h.write_u64(self.base, (n + 1) as u64);
        h.persist(self.base, 8);
        Ok(AppendLog::attach(&mut h, log_base, self.capacity_entries))
    }

    /// All registered logs (for recovery scans).
    pub fn logs(&self, pool: &PmemPool) -> Vec<AppendLog> {
        let mut h = pool.handle();
        let n = h.read_u64(self.base) as usize;
        (0..n)
            .map(|i| {
                let base = h.read_u64(self.base + 16 + i * 8) as PAddr;
                AppendLog::attach(&mut h, base, self.capacity_entries)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_nvm::PoolConfig;

    #[test]
    fn format_register_attach() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let reg = LogRegistry::format_pool(&pool, "test_logs", 64).unwrap();
        let mut log = reg.new_log(&pool).unwrap();
        let mut h = pool.handle();
        log.append(&mut h, crate::alog::Kind::Undo, 1, 2, 3);
        drop(h);
        pool.crash(0);
        let reg2 = LogRegistry::attach(&pool, "test_logs").unwrap();
        let logs = reg2.logs(&pool);
        assert_eq!(logs.len(), 1);
        let mut h = pool.handle();
        assert_eq!(logs[0].scan_len(&mut h), 1);
    }

    #[test]
    fn two_registries_coexist() {
        let pool = PmemPool::new(PoolConfig::small_for_tests());
        let a = LogRegistry::format_pool(&pool, "a_logs", 16).unwrap();
        let b = LogRegistry::install(&pool, a.allocator(), "b_logs", 16).unwrap();
        a.new_log(&pool).unwrap();
        b.new_log(&pool).unwrap();
        b.new_log(&pool).unwrap();
        assert_eq!(a.logs(&pool).len(), 1);
        assert_eq!(b.logs(&pool).len(), 2);
    }
}
