//! The scenario layer: a workload-spec header plus an optional program
//! section.
//!
//! ```text
//! scenario stack_smoke {
//!   workload stack        # stack|queue|list|map|memcached|redis|service|lf_list|lf_map
//!   threads 2
//!   ops 6
//!   schemes all           # `all`, `lockfree`, or explicit names (ido atlas ...)
//!   tier tier1            # optional, default tier1
//!   seed 0                # optional, default 0
//!   crash none            # optional: none|smoke
//! }
//!
//! fn worker(r0) regs=1 slots=0 {   # optional: replaces the workload's program
//!   ...
//! }
//! ```
//!
//! The named workload supplies setup, per-thread arguments, and final-state
//! verification; the program section (when present) replaces only the code.
//! That split is what lets a corpus-driven run be compared byte-for-byte
//! against its Rust-builder equivalent: same setup, same verification, the
//! only moving part is whether the program came from the builder or the
//! parser.

use std::collections::HashMap;

use ido_compiler::Scheme;
use ido_ir::Program;
use ido_vm::{ExecTier, Vm};
use ido_workloads::{kv, lockfree, micro, service, WorkloadSpec};

use crate::diag::{LangError, Span};
use crate::lexer::{lex, Tok, Token};
use crate::parser::{parse_program_tokens, ParsedProgram};

/// Which native workload a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Locked Treiber stack.
    Stack,
    /// Two-lock Michael–Scott queue.
    Queue,
    /// Hand-over-hand ordered list.
    List,
    /// Fixed-size hash map.
    Map,
    /// Memcached-like KV cache (insertion-intensive mix).
    Memcached,
    /// Redis-like object store (durable regions); takes `range`.
    Redis,
    /// Service-style fixed-slot store; takes `range`.
    Service,
    /// Lock-free list (recoverable-CAS family only).
    LfList,
    /// Lock-free hash map (recoverable-CAS family only).
    LfMap,
}

impl WorkloadKind {
    fn from_ident(s: &str) -> Option<WorkloadKind> {
        Some(match s {
            "stack" => WorkloadKind::Stack,
            "queue" => WorkloadKind::Queue,
            "list" => WorkloadKind::List,
            "map" => WorkloadKind::Map,
            "memcached" => WorkloadKind::Memcached,
            "redis" => WorkloadKind::Redis,
            "service" => WorkloadKind::Service,
            "lf_list" => WorkloadKind::LfList,
            "lf_map" => WorkloadKind::LfMap,
            _ => return None,
        })
    }

    /// True for the lock-free structures, which only run under
    /// [`Scheme::LOCKFREE`] (their `cas` is rejected by the lock-delineated
    /// schemes' instrumentation, and vice versa for `lock`).
    pub fn is_lockfree(self) -> bool {
        matches!(self, WorkloadKind::LfList | WorkloadKind::LfMap)
    }

    /// True when the workload takes a `range` parameter.
    pub fn takes_range(self) -> bool {
        matches!(self, WorkloadKind::Redis | WorkloadKind::Service)
    }

    /// The schemes this workload can run under.
    pub fn allowed_schemes(self) -> &'static [Scheme] {
        if self.is_lockfree() {
            &Scheme::LOCKFREE
        } else {
            &Scheme::ALL
        }
    }

    /// Builds the native Rust spec for this kind (with the scenario's
    /// `range`, where applicable).
    pub fn native_spec(self, range: Option<u64>) -> Box<dyn WorkloadSpec> {
        let range = range.unwrap_or(256);
        match self {
            WorkloadKind::Stack => Box::new(micro::StackSpec),
            WorkloadKind::Queue => Box::new(micro::QueueSpec),
            WorkloadKind::List => Box::new(micro::ListSpec::default()),
            WorkloadKind::Map => Box::new(micro::MapSpec::default()),
            WorkloadKind::Memcached => {
                Box::new(kv::memcached::MemcachedSpec::insertion_intensive())
            }
            WorkloadKind::Redis => Box::new(kv::redis::RedisSpec::with_range(range)),
            WorkloadKind::Service => Box::new(service::ServiceSpec::with_range(range)),
            WorkloadKind::LfList => Box::new(lockfree::LfListSpec),
            WorkloadKind::LfMap => Box::new(lockfree::LfMapSpec::default()),
        }
    }
}

/// Crash-exploration policy for `ido crashtest`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPolicy {
    /// No crash exploration.
    #[default]
    None,
    /// The crash oracle's smoke budget.
    Smoke,
}

/// A parsed `.ido` scenario.
#[derive(Debug)]
pub struct Scenario {
    /// Scenario name (the header's identifier).
    pub name: String,
    /// Workload kind.
    pub kind: WorkloadKind,
    /// `range` parameter, if given (redis/service only).
    pub range: Option<u64>,
    /// Worker thread count.
    pub threads: usize,
    /// Operations per thread.
    pub ops: u64,
    /// Schemes to run, in declaration order.
    pub schemes: Vec<Scheme>,
    /// Execution tier.
    pub tier: ExecTier,
    /// Scheduler seed.
    pub seed: u64,
    /// Crash-exploration policy.
    pub crash: CrashPolicy,
    /// The optional program section (replaces the native program).
    pub program: Option<ParsedProgram>,
}

impl Scenario {
    /// The spec to hand to `run_workload`: the native workload, with the
    /// scenario's program (if any) substituted in.
    pub fn spec(&self) -> ScenarioSpec {
        ScenarioSpec {
            native: self.kind.native_spec(self.range),
            program: self.program.as_ref().map(|p| p.program.clone()),
        }
    }
}

/// A [`WorkloadSpec`] that delegates everything to the scenario's native
/// workload except (when a program section was given) the program itself.
pub struct ScenarioSpec {
    native: Box<dyn WorkloadSpec>,
    program: Option<Program>,
}

impl WorkloadSpec for ScenarioSpec {
    fn name(&self) -> String {
        self.native.name()
    }

    fn build_program(&self) -> Program {
        match &self.program {
            Some(p) => p.clone(),
            None => self.native.build_program(),
        }
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        self.native.setup(vm, threads, ops)
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        self.native.worker_args(base, thread, ops)
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        self.native.verify(vm, base, total_ops)
    }
}

/// Parses a scheme name, case-insensitively and ignoring `_`/`-` (so
/// `iDO`, `ido`, `JUSTDO`, `justdo`, `lf_eager`, and `LF-Eager` all work
/// — note `-` only within an identifier typed in lowercase forms; the
/// canonical scenario spelling is the lowercase underscore form).
fn scheme_from_ident(s: &str) -> Option<Scheme> {
    let norm: String =
        s.chars().filter(|c| *c != '_' && *c != '-').flat_map(|c| c.to_lowercase()).collect();
    Some(match norm.as_str() {
        "origin" => Scheme::Origin,
        "ido" => Scheme::Ido,
        "atlas" => Scheme::Atlas,
        "mnemosyne" => Scheme::Mnemosyne,
        "justdo" => Scheme::JustDo,
        "nvml" => Scheme::Nvml,
        "nvthreads" => Scheme::Nvthreads,
        "nvtraverse" => Scheme::Nvtraverse,
        "lfeager" => Scheme::LfEager,
        _ => return None,
    })
}

/// Parses a full `.ido` file: the `scenario` header block, then an
/// optional program section.
///
/// # Errors
/// Returns the first spanned [`LangError`]; duplicate-key and
/// range-on-wrong-workload errors carry a secondary label at the related
/// position.
pub fn parse_scenario(source: &str) -> Result<Scenario, LangError> {
    let toks = lex(source)?;
    let mut c = Cur { toks, pos: 0 };
    c.eat_newlines();
    c.expect_keyword("scenario", "to start the file")?;
    let (name, _name_span) = c.expect_ident("as the scenario name")?;
    let open = c.expect(Tok::LBrace, "to open the scenario block")?;
    c.expect_line_end()?;

    let mut seen: HashMap<String, Span> = HashMap::new();
    let mut kind: Option<(WorkloadKind, Span)> = None;
    let mut range: Option<(u64, Span)> = None;
    let mut threads: Option<usize> = None;
    let mut ops: Option<u64> = None;
    let mut schemes: Option<Vec<(Scheme, Span)>> = None;
    let mut scheme_group: Option<(&'static [Scheme], Span)> = None;
    let mut tier = ExecTier::Tier1;
    let mut seed = 0u64;
    let mut crash = CrashPolicy::None;

    let close = loop {
        c.eat_newlines();
        if c.peek().tok == Tok::RBrace {
            break c.bump();
        }
        let (key, key_span) = c.expect_ident("as a scenario key")?;
        if let Some(&first) = seen.get(&key) {
            return Err(LangError::new(
                format!("duplicate key `{key}`"),
                key_span,
                "redefined here",
            )
            .with_note(first, "first defined here"));
        }
        seen.insert(key.clone(), key_span);
        match key.as_str() {
            "workload" => {
                let (w, wspan) = c.expect_ident("as the workload name")?;
                let Some(k) = WorkloadKind::from_ident(&w) else {
                    return Err(LangError::new(
                        format!("unknown workload `{w}`"),
                        wspan,
                        "expected one of: stack queue list map memcached redis service lf_list lf_map",
                    ));
                };
                kind = Some((k, key_span.to(wspan)));
            }
            "range" => {
                let (v, vspan) = c.expect_u64("as the key range")?;
                range = Some((v, key_span.to(vspan)));
            }
            "threads" => {
                let (v, vspan) = c.expect_u64("as the thread count")?;
                if v == 0 || v > 4096 {
                    return Err(LangError::new(
                        "thread count must be between 1 and 4096",
                        vspan,
                        "out of range",
                    ));
                }
                threads = Some(v as usize);
            }
            "ops" => {
                let (v, vspan) = c.expect_u64("as the per-thread op count")?;
                if v == 0 {
                    return Err(LangError::new(
                        "per-thread op count must be at least 1",
                        vspan,
                        "out of range",
                    ));
                }
                ops = Some(v);
            }
            "schemes" => {
                let mut list = Vec::new();
                loop {
                    let t = c.peek().clone();
                    let Tok::Ident(w) = &t.tok else { break };
                    let w = w.clone();
                    c.bump();
                    match w.as_str() {
                        "all" => scheme_group = Some((&Scheme::ALL, t.span)),
                        "lockfree" => scheme_group = Some((&Scheme::LOCKFREE, t.span)),
                        _ => match scheme_from_ident(&w) {
                            Some(s) => list.push((s, t.span)),
                            None => {
                                return Err(LangError::new(
                                    format!("unknown scheme `{w}`"),
                                    t.span,
                                    "expected a scheme name, `all`, or `lockfree`",
                                ))
                            }
                        },
                    }
                }
                if list.is_empty() && scheme_group.is_none() {
                    return Err(LangError::new(
                        "`schemes` needs at least one scheme",
                        key_span,
                        "empty scheme list",
                    ));
                }
                if !list.is_empty() {
                    schemes = Some(list);
                }
            }
            "tier" => {
                let (w, wspan) = c.expect_ident("as the execution tier")?;
                tier = match w.as_str() {
                    "tier1" => ExecTier::Tier1,
                    "tier2" => ExecTier::Tier2,
                    _ => {
                        return Err(LangError::new(
                            format!("unknown tier `{w}`"),
                            wspan,
                            "expected `tier1` or `tier2`",
                        ))
                    }
                };
            }
            "seed" => {
                let (v, _) = c.expect_u64("as the scheduler seed")?;
                seed = v;
            }
            "crash" => {
                let (w, wspan) = c.expect_ident("as the crash policy")?;
                crash = match w.as_str() {
                    "none" => CrashPolicy::None,
                    "smoke" => CrashPolicy::Smoke,
                    _ => {
                        return Err(LangError::new(
                            format!("unknown crash policy `{w}`"),
                            wspan,
                            "expected `none` or `smoke`",
                        ))
                    }
                };
            }
            _ => {
                return Err(LangError::new(
                    format!("unknown scenario key `{key}`"),
                    key_span,
                    "expected one of: workload range threads ops schemes tier seed crash",
                ))
            }
        }
        c.expect_line_end()?;
    };

    // Required keys.
    let Some((kind, kind_span)) = kind else {
        return Err(LangError::new("scenario is missing `workload`", close.span, "block ends here")
            .with_note(open.span, "scenario opened here"));
    };
    let Some(threads) = threads else {
        return Err(LangError::new("scenario is missing `threads`", close.span, "block ends here")
            .with_note(open.span, "scenario opened here"));
    };
    let Some(ops) = ops else {
        return Err(LangError::new("scenario is missing `ops`", close.span, "block ends here")
            .with_note(open.span, "scenario opened here"));
    };

    // Cross-key validation.
    if let Some((_, rspan)) = range.filter(|_| !kind.takes_range()) {
        return Err(LangError::new(
            "`range` only applies to the redis and service workloads",
            rspan,
            "range given here",
        )
        .with_note(kind_span, "for this workload"));
    }
    let allowed = kind.allowed_schemes();
    let schemes: Vec<Scheme> = match (schemes, scheme_group) {
        (Some(list), _) => {
            for &(s, sspan) in &list {
                if !allowed.contains(&s) {
                    return Err(LangError::new(
                        format!("scheme {} cannot run this workload", s.name()),
                        sspan,
                        if kind.is_lockfree() {
                            "lock-free workloads only run under `lockfree` schemes"
                        } else {
                            "lock-delineated workloads cannot run under the lock-free family"
                        },
                    )
                    .with_note(kind_span, "workload declared here"));
                }
            }
            list.into_iter().map(|(s, _)| s).collect()
        }
        (None, Some((group, gspan))) => {
            if group.iter().any(|s| !allowed.contains(s)) {
                return Err(LangError::new(
                    "scheme group does not match the workload",
                    gspan,
                    if kind.is_lockfree() {
                        "lock-free workloads need `schemes lockfree`"
                    } else {
                        "this workload needs `schemes all` or explicit lock-delineated schemes"
                    },
                )
                .with_note(kind_span, "workload declared here"));
            }
            group.to_vec()
        }
        (None, None) => allowed.to_vec(),
    };

    // Optional program section.
    c.eat_newlines();
    let program = if c.peek().tok == Tok::Eof {
        None
    } else {
        let rest: Vec<Token> = c.toks[c.pos..].to_vec();
        let parsed = parse_program_tokens(rest)?;
        if parsed.program.find("worker").is_none() {
            return Err(LangError::new(
                "program section defines no `worker` function",
                parsed.fn_spans[0],
                "the harness spawns `worker` on every thread",
            ));
        }
        Some(parsed)
    };

    Ok(Scenario { name, kind, range: range.map(|(v, _)| v), threads, ops, schemes, tier, seed, crash, program })
}

/// Minimal token cursor for the scenario header (the program section uses
/// the full [`crate::parser`]).
struct Cur {
    toks: Vec<Token>,
    pos: usize,
}

impl Cur {
    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_newlines(&mut self) {
        while self.peek().tok == Tok::Newline {
            self.bump();
        }
    }

    fn expect(&mut self, want: Tok, ctx: &str) -> Result<Token, LangError> {
        let t = self.bump();
        if t.tok == want {
            Ok(t)
        } else {
            Err(LangError::new(
                format!("expected {} {ctx}, found {}", want.describe(), t.tok.describe()),
                t.span,
                format!("expected {}", want.describe()),
            ))
        }
    }

    fn expect_ident(&mut self, ctx: &str) -> Result<(String, Span), LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.span)),
            other => Err(LangError::new(
                format!("expected identifier {ctx}, found {}", other.describe()),
                t.span,
                "expected an identifier",
            )),
        }
    }

    fn expect_keyword(&mut self, word: &str, ctx: &str) -> Result<Span, LangError> {
        let (s, span) = self.expect_ident(ctx)?;
        if s == word {
            Ok(span)
        } else {
            Err(LangError::new(
                format!("expected `{word}` {ctx}, found `{s}`"),
                span,
                format!("expected `{word}`"),
            ))
        }
    }

    fn expect_u64(&mut self, ctx: &str) -> Result<(u64, Span), LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Int(v) => Ok((v, t.span)),
            other => Err(LangError::new(
                format!("expected integer {ctx}, found {}", other.describe()),
                t.span,
                "expected an integer",
            )),
        }
    }

    fn expect_line_end(&mut self) -> Result<(), LangError> {
        match &self.peek().tok {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => {
                let t = self.peek().clone();
                Err(LangError::new(
                    format!("expected end of line, found {}", other.describe()),
                    t.span,
                    "one key per line",
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_scenario_gets_defaults() {
        let s = parse_scenario("scenario smoke {\n  workload stack\n  threads 2\n  ops 6\n}\n")
            .unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.kind, WorkloadKind::Stack);
        assert_eq!(s.threads, 2);
        assert_eq!(s.ops, 6);
        assert_eq!(s.schemes, Scheme::ALL.to_vec());
        assert_eq!(s.tier, ExecTier::Tier1);
        assert_eq!(s.seed, 0);
        assert_eq!(s.crash, CrashPolicy::None);
        assert!(s.program.is_none());
        assert_eq!(s.spec().name(), "stack");
    }

    #[test]
    fn explicit_keys_parse() {
        let src = "scenario svc {\n  workload service\n  range 128\n  threads 4\n  ops 50\n  schemes ido justdo\n  tier tier2\n  seed 42\n  crash smoke\n}\n";
        let s = parse_scenario(src).unwrap();
        assert_eq!(s.kind, WorkloadKind::Service);
        assert_eq!(s.range, Some(128));
        assert_eq!(s.schemes, vec![Scheme::Ido, Scheme::JustDo]);
        assert_eq!(s.tier, ExecTier::Tier2);
        assert_eq!(s.seed, 42);
        assert_eq!(s.crash, CrashPolicy::Smoke);
        assert_eq!(s.spec().name(), "service(range=128)");
    }

    #[test]
    fn lockfree_workloads_default_to_the_lockfree_family() {
        let s = parse_scenario("scenario lf {\n  workload lf_list\n  threads 2\n  ops 4\n}\n")
            .unwrap();
        assert_eq!(s.schemes, Scheme::LOCKFREE.to_vec());
    }

    #[test]
    fn scheme_names_are_case_insensitive() {
        let src = "scenario x {\n  workload queue\n  threads 1\n  ops 2\n  schemes iDO JUSTDO NVThreads\n}\n";
        let s = parse_scenario(src).unwrap();
        assert_eq!(s.schemes, vec![Scheme::Ido, Scheme::JustDo, Scheme::Nvthreads]);
    }

    #[test]
    fn duplicate_key_is_a_two_label_error() {
        let src = "scenario x {\n  workload stack\n  threads 2\n  threads 4\n  ops 6\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("duplicate key `threads`"), "{e:?}");
        assert_eq!(e.secondary.len(), 1);
        let r = e.render("x.ido", src);
        assert!(r.contains("first defined here"), "{r}");
    }

    #[test]
    fn unknown_scheme_is_spanned() {
        let src = "scenario x {\n  workload stack\n  threads 2\n  ops 6\n  schemes frobnicate\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("unknown scheme `frobnicate`"), "{e:?}");
        assert_eq!(&src[e.primary.span.start..e.primary.span.end], "frobnicate");
    }

    #[test]
    fn range_on_a_rangeless_workload_is_rejected() {
        let src = "scenario x {\n  workload stack\n  range 64\n  threads 2\n  ops 6\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("range"), "{e:?}");
        assert_eq!(e.secondary.len(), 1);
    }

    #[test]
    fn incompatible_scheme_for_workload_is_rejected() {
        let src = "scenario x {\n  workload lf_list\n  threads 2\n  ops 4\n  schemes ido\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("cannot run this workload"), "{e:?}");
        let src = "scenario x {\n  workload stack\n  threads 2\n  ops 4\n  schemes lockfree\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("does not match"), "{e:?}");
    }

    #[test]
    fn missing_required_keys_are_reported() {
        let e = parse_scenario("scenario x {\n  workload stack\n  threads 2\n}\n").unwrap_err();
        assert!(e.message.contains("missing `ops`"), "{e:?}");
        let e = parse_scenario("scenario x {\n  threads 2\n  ops 6\n}\n").unwrap_err();
        assert!(e.message.contains("missing `workload`"), "{e:?}");
    }

    #[test]
    fn program_section_replaces_the_program() {
        let src = "scenario x {\n  workload stack\n  threads 1\n  ops 2\n}\n\nfn worker(r0, r1, r2) regs=3 slots=0 {\n  bb0:\n    ret\n}\n";
        let s = parse_scenario(src).unwrap();
        let p = s.program.as_ref().unwrap();
        assert!(p.program.find("worker").is_some());
        assert_eq!(s.spec().build_program(), p.program);
    }

    #[test]
    fn program_section_without_worker_is_rejected() {
        let src = "scenario x {\n  workload stack\n  threads 1\n  ops 2\n}\n\nfn helper() regs=0 slots=0 {\n  bb0:\n    ret\n}\n";
        let e = parse_scenario(src).unwrap_err();
        assert!(e.message.contains("no `worker`"), "{e:?}");
    }
}
