//! Textual frontend for the iDO reproduction.
//!
//! This crate turns `.ido` files into runnable experiments. A file has
//! two layers:
//!
//! 1. **Scenario header** — a `scenario <name> { ... }` block naming a
//!    workload (one of the harness's standard or lock-free specs),
//!    thread/op counts, the schemes to run, the execution tier, and the
//!    crash policy.
//! 2. **Program section** — optional: a full textual IR program in the
//!    canonical format (the pretty-printer's output). When present it
//!    replaces the workload's built-in program; setup, per-thread
//!    arguments, and final-state verification still come from the named
//!    native workload, which is what lets a corpus-driven run be checked
//!    byte-for-byte against its Rust-builder equivalent.
//!
//! Everything that can go wrong carries a byte span: the
//! [`diag::LangError`] renderer shows the offending line with a caret,
//! plus secondary labels for two-position errors (duplicate scenario
//! keys, `regs=` bound violations, call-arity mismatches).
//!
//! The [`explain`] module renders `ido-verify` diagnostics — which point
//! into the *instrumented* program — against a line-numbered listing, so
//! a witness path becomes a sequence of real source lines.

#![warn(missing_docs)]

pub mod diag;
pub mod explain;
pub mod lexer;
pub mod parser;
pub mod scenario;

pub use diag::{Label, LangError, Span};
pub use explain::{render_diagnostic, Listing};
pub use parser::{parse_program_text, ParsedProgram};
pub use scenario::{parse_scenario, Scenario, ScenarioSpec, WorkloadKind};
