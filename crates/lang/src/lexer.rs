//! Lexer for the canonical textual IR / scenario format.
//!
//! Newlines are significant (they terminate statements, which is what
//! disambiguates `ret` from `ret r1`), `#` starts a comment running to
//! end of line, and identifiers may contain interior dots so runtime-op
//! mnemonics like `rt.justdo_log` lex as one token. Every token carries
//! its byte [`Span`].

use crate::diag::{LangError, Span};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or mnemonic (`worker`, `mem`, `rt.tx_begin`,
    /// `r12`, `bb3`, `fn0`).
    Ident(String),
    /// Unsigned decimal magnitude; sign is a separate [`Tok::Minus`].
    Int(u64),
    /// Double-quoted string (escaped function names).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `=`
    Equals,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `->`
    Arrow,
    /// `<-`
    LArrow,
    /// End of line (statement terminator).
    Newline,
    /// End of input.
    Eof,
}

impl Tok {
    /// Short human name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Int(v) => format!("`{v}`"),
            Tok::Str(_) => "string".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Colon => "`:`".into(),
            Tok::Question => "`?`".into(),
            Tok::Equals => "`=`".into(),
            Tok::Plus => "`+`".into(),
            Tok::Minus => "`-`".into(),
            Tok::Arrow => "`->`".into(),
            Tok::LArrow => "`<-`".into(),
            Tok::Newline => "end of line".into(),
            Tok::Eof => "end of input".into(),
        }
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Byte range in the source.
    pub span: Span,
}

/// Lexes `source` into a token stream ending in [`Tok::Eof`].
///
/// # Errors
/// Returns a spanned [`LangError`] on the first unrecognized character,
/// malformed escape, unterminated string, or numeric overflow.
pub fn lex(source: &str) -> Result<Vec<Token>, LangError> {
    let b = source.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'\n' => {
                toks.push(Token { tok: Tok::Newline, span: Span::new(start, start + 1) });
                i += 1;
            }
            b'(' | b')' | b'{' | b'}' | b'[' | b']' | b',' | b':' | b'?' | b'=' | b'+' => {
                let tok = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b',' => Tok::Comma,
                    b':' => Tok::Colon,
                    b'?' => Tok::Question,
                    b'=' => Tok::Equals,
                    _ => Tok::Plus,
                };
                toks.push(Token { tok, span: Span::new(start, start + 1) });
                i += 1;
            }
            b'-' => {
                if i + 1 < b.len() && b[i + 1] == b'>' {
                    toks.push(Token { tok: Tok::Arrow, span: Span::new(start, start + 2) });
                    i += 2;
                } else {
                    toks.push(Token { tok: Tok::Minus, span: Span::new(start, start + 1) });
                    i += 1;
                }
            }
            b'<' => {
                if i + 1 < b.len() && b[i + 1] == b'-' {
                    toks.push(Token { tok: Tok::LArrow, span: Span::new(start, start + 2) });
                    i += 2;
                } else {
                    return Err(LangError::new(
                        "unrecognized character `<`",
                        Span::new(start, start + 1),
                        "expected `<-` here",
                    ));
                }
            }
            b'0'..=b'9' => {
                let mut v: u64 = 0;
                while i < b.len() && b[i].is_ascii_digit() {
                    let d = (b[i] - b'0') as u64;
                    v = v
                        .checked_mul(10)
                        .and_then(|v| v.checked_add(d))
                        .ok_or_else(|| {
                            let mut end = i;
                            while end < b.len() && b[end].is_ascii_digit() {
                                end += 1;
                            }
                            LangError::new(
                                "integer literal overflows 64 bits",
                                Span::new(start, end),
                                "does not fit in a u64 magnitude",
                            )
                        })?;
                    i += 1;
                }
                toks.push(Token { tok: Tok::Int(v), span: Span::new(start, i) });
            }
            b'"' => {
                let (s, end) = lex_string(source, start)?;
                toks.push(Token { tok: Tok::Str(s), span: Span::new(start, end) });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                toks.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            _ => {
                // Span the whole UTF-8 character, not just its first byte.
                let ch_len = source[start..].chars().next().map_or(1, |c| c.len_utf8());
                return Err(LangError::new(
                    format!("unrecognized character `{}`", &source[start..start + ch_len]),
                    Span::new(start, start + ch_len),
                    "not part of any token",
                ));
            }
        }
    }
    toks.push(Token { tok: Tok::Eof, span: Span::new(b.len(), b.len()) });
    Ok(toks)
}

/// Lexes a double-quoted string starting at byte `start` (which must hold
/// `"`). Returns the unescaped contents and the byte offset one past the
/// closing quote.
fn lex_string(source: &str, start: usize) -> Result<(String, usize), LangError> {
    let b = source.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'"' => return Ok((out, i + 1)),
            b'\n' => break,
            b'\\' => {
                let esc_start = i;
                i += 1;
                let Some(&e) = b.get(i) else { break };
                match e {
                    b'\\' => out.push('\\'),
                    b'"' => out.push('"'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'x' => {
                        let hex = source.get(i + 1..i + 3).filter(|h| h.is_ascii());
                        let v = hex.and_then(|h| u8::from_str_radix(h, 16).ok());
                        match v {
                            Some(v) => {
                                out.push(v as char);
                                i += 2;
                            }
                            None => {
                                return Err(LangError::new(
                                    "malformed `\\x` escape",
                                    Span::new(esc_start, (i + 3).min(b.len())),
                                    "expected two hex digits",
                                ))
                            }
                        }
                    }
                    _ => {
                        return Err(LangError::new(
                            format!("unknown escape `\\{}`", e as char),
                            Span::new(esc_start, i + 1),
                            "valid escapes: \\\\ \\\" \\n \\t \\r \\xNN",
                        ))
                    }
                }
                i += 1;
            }
            _ => {
                let ch = source[i..].chars().next().expect("in-bounds char");
                out.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(LangError::new(
        "unterminated string",
        Span::new(start, start + 1),
        "string opened here never closes",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_an_instruction_line() {
        assert_eq!(
            kinds("r1 = add r0, 1\n"),
            vec![
                Tok::Ident("r1".into()),
                Tok::Equals,
                Tok::Ident("add".into()),
                Tok::Ident("r0".into()),
                Tok::Comma,
                Tok::Int(1),
                Tok::Newline,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lexes_addresses_arrows_and_negative_offsets() {
        assert_eq!(
            kinds("mem[r1-8] = 7"),
            vec![
                Tok::Ident("mem".into()),
                Tok::LBracket,
                Tok::Ident("r1".into()),
                Tok::Minus,
                Tok::Int(8),
                Tok::RBracket,
                Tok::Equals,
                Tok::Int(7),
                Tok::Eof,
            ]
        );
        assert_eq!(
            kinds("0 -> 1 <- x"),
            vec![
                Tok::Int(0),
                Tok::Arrow,
                Tok::Int(1),
                Tok::LArrow,
                Tok::Ident("x".into()),
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn dotted_mnemonics_are_one_token() {
        assert_eq!(
            kinds("rt.justdo_log"),
            vec![Tok::Ident("rt.justdo_log".into()), Tok::Eof]
        );
    }

    #[test]
    fn comments_run_to_end_of_line() {
        assert_eq!(
            kinds("ret # the end\nret"),
            vec![Tok::Ident("ret".into()), Tok::Newline, Tok::Ident("ret".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_unescape() {
        assert_eq!(
            kinds(r#""a\"b\\c\n\x01""#),
            vec![Tok::Str("a\"b\\c\n\x01".into()), Tok::Eof]
        );
    }

    #[test]
    fn spans_are_byte_accurate() {
        let toks = lex("ab 12").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
        assert_eq!(toks[2].span, Span::new(5, 5));
    }

    #[test]
    fn full_span_u64_magnitude_lexes() {
        assert_eq!(kinds("18446744073709551615"), vec![Tok::Int(u64::MAX), Tok::Eof]);
        assert!(lex("18446744073709551616").is_err());
    }

    #[test]
    fn errors_are_spanned() {
        let e = lex("ok @").unwrap_err();
        assert_eq!(e.primary.span, Span::new(3, 4));
        let e = lex("\"never closed").unwrap_err();
        assert_eq!(e.primary.span.start, 0);
        let e = lex("a < b").unwrap_err();
        assert!(e.message.contains('<'), "{e:?}");
    }
}
