//! Recursive-descent parser for the canonical textual IR format.
//!
//! The grammar is exactly the output of `ido-ir`'s pretty-printer (see
//! DESIGN.md §14): a sequence of `fn` definitions, each a header carrying
//! explicit `regs=`/`slots=` counts, followed by labeled basic blocks of
//! one instruction per line. Function ids are positional (`call fnN`
//! refers to the N-th function in the file), matching the printer.
//!
//! Every parse error is a spanned [`LangError`]; structural violations
//! that involve two positions (a register above the declared `regs=`
//! count, a call to an out-of-range function) carry secondary labels.

use std::collections::HashMap;

use ido_ir::{
    verify_function, BasicBlock, BinOp, BlockId, FuncId, Function, Inst, Operand, Program, Reg,
    RtOp, StackSlot,
};

use crate::diag::{LangError, Span};
use crate::lexer::{lex, Tok, Token};

/// A parsed program plus source positions for every instruction, keyed by
/// `(function id, block id, instruction index)`.
#[derive(Debug, Clone)]
pub struct ParsedProgram {
    /// The assembled, verified program.
    pub program: Program,
    /// Source span of each instruction line.
    pub inst_spans: HashMap<(u32, u32, u32), Span>,
    /// Source span of each function header.
    pub fn_spans: Vec<Span>,
}

/// Parses a full textual IR program.
///
/// # Errors
/// Returns the first spanned [`LangError`]: lex errors, malformed
/// instructions, non-dense block labels, register/slot ids above the
/// declared counts, out-of-range call targets, call arity mismatches, and
/// anything `ido_ir::verify_function` rejects.
pub fn parse_program_text(source: &str) -> Result<ParsedProgram, LangError> {
    let toks = lex(source)?;
    let mut p = Parser::new(toks);
    p.parse_program()
}

/// Parses the token stream from `start` (used by the scenario layer to
/// parse the program section after the header).
pub(crate) fn parse_program_tokens(
    toks: Vec<Token>,
) -> Result<ParsedProgram, LangError> {
    let mut p = Parser::new(toks);
    p.parse_program()
}

struct CallSite {
    span: Span,
    callee: FuncId,
    argc: usize,
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    calls: Vec<CallSite>,
    /// Highest register id mentioned so far in the current function, with
    /// the span of the mention (for the `regs=` bound diagnostic).
    max_reg: Option<(u32, Span)>,
    max_slot: Option<(u32, Span)>,
}

impl Parser {
    fn new(toks: Vec<Token>) -> Parser {
        Parser { toks, pos: 0, calls: Vec::new(), max_reg: None, max_slot: None }
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos.min(self.toks.len() - 1)].clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat_newlines(&mut self) {
        while self.peek().tok == Tok::Newline {
            self.bump();
        }
    }

    fn expect(&mut self, want: Tok, ctx: &str) -> Result<Token, LangError> {
        let t = self.bump();
        if t.tok == want {
            Ok(t)
        } else {
            Err(LangError::new(
                format!("expected {} {ctx}, found {}", want.describe(), t.tok.describe()),
                t.span,
                format!("expected {}", want.describe()),
            ))
        }
    }

    fn expect_ident(&mut self, ctx: &str) -> Result<(String, Span), LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.span)),
            other => Err(LangError::new(
                format!("expected identifier {ctx}, found {}", other.describe()),
                t.span,
                "expected an identifier",
            )),
        }
    }

    fn expect_keyword(&mut self, word: &str, ctx: &str) -> Result<Span, LangError> {
        let (s, span) = self.expect_ident(ctx)?;
        if s == word {
            Ok(span)
        } else {
            Err(LangError::new(
                format!("expected `{word}` {ctx}, found `{s}`"),
                span,
                format!("expected `{word}`"),
            ))
        }
    }

    /// Consumes the end-of-statement newline (or accepts EOF / a `}` on
    /// the same position for the last line of a file).
    fn expect_line_end(&mut self) -> Result<(), LangError> {
        match &self.peek().tok {
            Tok::Newline => {
                self.bump();
                Ok(())
            }
            Tok::Eof => Ok(()),
            other => {
                let t = self.peek().clone();
                Err(LangError::new(
                    format!("expected end of line, found {}", other.describe()),
                    t.span,
                    "instruction continues past its statement",
                ))
            }
        }
    }

    // ---- numbers, registers, slots, ids ----

    fn expect_u64(&mut self, ctx: &str) -> Result<(u64, Span), LangError> {
        let t = self.bump();
        match t.tok {
            Tok::Int(v) => Ok((v, t.span)),
            other => Err(LangError::new(
                format!("expected integer {ctx}, found {}", other.describe()),
                t.span,
                "expected an integer",
            )),
        }
    }

    fn expect_u32(&mut self, ctx: &str) -> Result<(u32, Span), LangError> {
        let (v, span) = self.expect_u64(ctx)?;
        u32::try_from(v).map(|v| (v, span)).map_err(|_| {
            LangError::new(format!("{ctx} does not fit in 32 bits"), span, "too large")
        })
    }

    /// `r12` / `f3` → a register. Updates the per-function max tracker.
    fn expect_reg(&mut self, ctx: &str) -> Result<(Reg, Span), LangError> {
        let (s, span) = self.expect_ident(ctx)?;
        match parse_reg_name(&s) {
            Some(r) => {
                self.note_reg(r, span);
                Ok((r, span))
            }
            None => Err(LangError::new(
                format!("expected register {ctx}, found `{s}`"),
                span,
                "expected `rN` or `fN`",
            )),
        }
    }

    fn expect_slot(&mut self, ctx: &str) -> Result<(StackSlot, Span), LangError> {
        let (s, span) = self.expect_ident(ctx)?;
        match parse_suffixed(&s, "s") {
            Some(id) => {
                let slot = StackSlot(id);
                self.note_slot(slot, span);
                Ok((slot, span))
            }
            None => Err(LangError::new(
                format!("expected stack slot {ctx}, found `{s}`"),
                span,
                "expected `sN`",
            )),
        }
    }

    fn expect_block_ref(&mut self, ctx: &str) -> Result<(BlockId, Span), LangError> {
        let (s, span) = self.expect_ident(ctx)?;
        match parse_suffixed(&s, "bb") {
            Some(id) => Ok((BlockId(id), span)),
            None => Err(LangError::new(
                format!("expected block label {ctx}, found `{s}`"),
                span,
                "expected `bbN`",
            )),
        }
    }

    fn note_reg(&mut self, r: Reg, span: Span) {
        if self.max_reg.map_or(true, |(m, _)| r.id > m) {
            self.max_reg = Some((r.id, span));
        }
    }

    fn note_slot(&mut self, s: StackSlot, span: Span) {
        if self.max_slot.map_or(true, |(m, _)| s.0 > m) {
            self.max_slot = Some((s.0, span));
        }
    }

    /// An operand: `rN` / `fN` / decimal immediate / `-` immediate. The
    /// printed form of `i64::MIN` (`-9223372036854775808`) parses via the
    /// u64 magnitude and a wrapping negation.
    fn expect_operand(&mut self, ctx: &str) -> Result<(Operand, Span), LangError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Minus => {
                let minus = self.bump();
                let (v, vspan) = self.expect_u64(ctx)?;
                if v > (1u64 << 63) {
                    return Err(LangError::new(
                        "negative immediate below i64::MIN",
                        minus.span.to(vspan),
                        "magnitude exceeds 2^63",
                    ));
                }
                Ok((Operand::Imm((v as i64).wrapping_neg()), minus.span.to(vspan)))
            }
            Tok::Int(v) => {
                let v = *v;
                let t = self.bump();
                if v > i64::MAX as u64 {
                    return Err(LangError::new(
                        "immediate exceeds i64::MAX",
                        t.span,
                        "write negative immediates with a leading `-`",
                    ));
                }
                Ok((Operand::Imm(v as i64), t.span))
            }
            Tok::Ident(_) => {
                let (r, span) = self.expect_reg(ctx)?;
                Ok((Operand::Reg(r), span))
            }
            other => Err(LangError::new(
                format!("expected operand {ctx}, found {}", other.describe()),
                t.span,
                "expected a register or immediate",
            )),
        }
    }

    /// `[base+off]` / `[base-off]` address expression (after the opening
    /// bracket's *preceding* mnemonic; consumes from `[` to `]`).
    fn expect_address(&mut self, ctx: &str) -> Result<(Reg, i64, Span), LangError> {
        let open = self.expect(Tok::LBracket, ctx)?;
        let (base, _) = self.expect_reg("as address base")?;
        let sign = self.bump();
        let negative = match sign.tok {
            Tok::Plus => false,
            Tok::Minus => true,
            other => {
                return Err(LangError::new(
                    format!("expected `+` or `-` in address, found {}", other.describe()),
                    sign.span,
                    "offsets are written `[base+o]` or `[base-o]`",
                ))
            }
        };
        let (mag, mag_span) = self.expect_u64("as address offset")?;
        let offset = if negative {
            if mag > (1u64 << 63) {
                return Err(LangError::new(
                    "address offset below i64::MIN",
                    sign.span.to(mag_span),
                    "magnitude exceeds 2^63",
                ));
            }
            (mag as i64).wrapping_neg()
        } else {
            if mag > i64::MAX as u64 {
                return Err(LangError::new(
                    "address offset exceeds i64::MAX",
                    mag_span,
                    "too large",
                ));
            }
            mag as i64
        };
        let close = self.expect(Tok::RBracket, "to close the address")?;
        Ok((base, offset, open.span.to(close.span)))
    }

    // ---- program / function / block structure ----

    fn parse_program(&mut self) -> Result<ParsedProgram, LangError> {
        let mut program = Program::new();
        let mut inst_spans = HashMap::new();
        let mut fn_spans = Vec::new();
        self.eat_newlines();
        while self.peek().tok != Tok::Eof {
            let (func, header_span, spans) = self.parse_function()?;
            let fid = program.add_function(func).0;
            fn_spans.push(header_span);
            for ((b, i), s) in spans {
                inst_spans.insert((fid, b, i), s);
            }
            self.eat_newlines();
        }
        if program.functions().is_empty() {
            let span = self.peek().span;
            return Err(LangError::new(
                "empty program: no `fn` definitions",
                span,
                "expected at least one function",
            ));
        }
        // Late-validate call sites: positional `fnN` references may point
        // forward, so targets are only checkable once every function is in.
        for call in &self.calls {
            let n = program.functions().len() as u32;
            if call.callee.0 >= n {
                return Err(LangError::new(
                    format!(
                        "call target `fn{}` out of range: program has {n} function(s)",
                        call.callee.0
                    ),
                    call.span,
                    "no such function",
                ));
            }
            let callee = program.function(call.callee);
            if callee.params().len() != call.argc {
                return Err(LangError::new(
                    format!(
                        "call passes {} argument(s) but `{}` takes {}",
                        call.argc,
                        callee.name(),
                        callee.params().len()
                    ),
                    call.span,
                    "arity mismatch",
                )
                .with_note(
                    fn_spans[call.callee.0 as usize],
                    format!("`{}` defined here", callee.name()),
                ));
            }
        }
        Ok(ParsedProgram { program, inst_spans, fn_spans })
    }

    #[allow(clippy::type_complexity)]
    fn parse_function(
        &mut self,
    ) -> Result<(Function, Span, Vec<((u32, u32), Span)>), LangError> {
        self.max_reg = None;
        self.max_slot = None;
        let fn_kw = self.expect_keyword("fn", "to start a function")?;

        // Name: bare identifier or quoted string.
        let name_tok = self.bump();
        let name = match name_tok.tok {
            Tok::Ident(s) => s,
            Tok::Str(s) => s,
            other => {
                return Err(LangError::new(
                    format!("expected function name, found {}", other.describe()),
                    name_tok.span,
                    "expected a name or quoted string",
                ))
            }
        };

        // Parameter list.
        self.expect(Tok::LParen, "after the function name")?;
        let mut params = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                let (r, _) = self.expect_reg("as a parameter")?;
                params.push(r);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "to close the parameter list")?;

        // Optional explicit counts: `regs=N slots=M`.
        let mut regs_decl: Option<(u32, Span)> = None;
        let mut slots_decl: Option<(u32, Span)> = None;
        while let Tok::Ident(word) = &self.peek().tok {
            let which = word.clone();
            if which != "regs" && which != "slots" {
                break;
            }
            let kw = self.bump();
            self.expect(Tok::Equals, "after the count keyword")?;
            let (v, vspan) = self.expect_u32(&format!("as the `{which}` count"))?;
            let span = kw.span.to(vspan);
            if which == "regs" {
                regs_decl = Some((v, span));
            } else {
                slots_decl = Some((v, span));
            }
        }

        let brace = self.expect(Tok::LBrace, "to open the function body")?;
        let header_span = fn_kw.to(brace.span);
        self.expect_line_end()?;

        // Parameters count toward the register bound.
        for &p in &params {
            self.note_reg(p, header_span);
        }

        // Blocks: labels must be dense and in order (the canonical form).
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut spans: Vec<((u32, u32), Span)> = Vec::new();
        loop {
            self.eat_newlines();
            if self.peek().tok == Tok::RBrace {
                self.bump();
                break;
            }
            if self.peek().tok == Tok::Eof {
                return Err(LangError::new(
                    "unclosed function body",
                    self.peek().span,
                    "expected `}`",
                )
                .with_note(header_span, "function opened here"));
            }
            // A block label?
            let is_label = matches!(
                (&self.peek().tok, self.toks.get(self.pos + 1).map(|t| &t.tok)),
                (Tok::Ident(s), Some(Tok::Colon)) if parse_suffixed(s, "bb").is_some()
            );
            if is_label {
                let (b, bspan) = self.expect_block_ref("as a block label")?;
                self.expect(Tok::Colon, "after the block label")?;
                self.expect_line_end()?;
                if b.0 as usize != blocks.len() {
                    return Err(LangError::new(
                        format!(
                            "block labels must be dense and in order: expected `bb{}`, found `bb{}`",
                            blocks.len(),
                            b.0
                        ),
                        bspan,
                        "out-of-order block label",
                    ));
                }
                blocks.push(BasicBlock::default());
                continue;
            }
            // An instruction line.
            let start_span = self.peek().span;
            if blocks.is_empty() {
                return Err(LangError::new(
                    "instruction before the first block label",
                    start_span,
                    "expected `bb0:` first",
                ));
            }
            let inst = self.parse_inst()?;
            let end_span = self.toks[self.pos.saturating_sub(1)].span;
            self.expect_line_end()?;
            let b = blocks.len() - 1;
            let i = blocks[b].insts.len();
            blocks[b].insts.push(inst);
            spans.push(((b as u32, i as u32), start_span.to(end_span)));
        }

        // Resolve register/slot counts and check the declared bounds.
        let inferred_regs = self.max_reg.map_or(0, |(m, _)| m + 1);
        let inferred_slots = self.max_slot.map_or(0, |(m, _)| m + 1);
        let num_regs = match regs_decl {
            Some((n, decl_span)) => {
                if let Some((m, use_span)) = self.max_reg.filter(|&(m, _)| m >= n) {
                    return Err(LangError::new(
                        format!("register r{m} is out of range: header declares regs={n}"),
                        use_span,
                        "register id above the declared count",
                    )
                    .with_note(decl_span, "count declared here"));
                }
                n
            }
            None => inferred_regs,
        };
        let num_slots = match slots_decl {
            Some((n, decl_span)) => {
                if let Some((m, use_span)) = self.max_slot.filter(|&(m, _)| m >= n) {
                    return Err(LangError::new(
                        format!("stack slot s{m} is out of range: header declares slots={n}"),
                        use_span,
                        "slot id above the declared count",
                    )
                    .with_note(decl_span, "count declared here"));
                }
                n
            }
            None => inferred_slots,
        };

        let func = Function::from_raw_parts(name, params, blocks, num_regs, num_slots);
        if let Err(e) = verify_function(&func) {
            return Err(LangError::new(
                format!("function fails IR verification: {e}"),
                header_span,
                "in this function",
            ));
        }
        Ok((func, header_span, spans))
    }

    // ---- instructions ----

    fn parse_inst(&mut self) -> Result<Inst, LangError> {
        let t = self.peek().clone();
        let Tok::Ident(word) = &t.tok else {
            return Err(LangError::new(
                format!("expected an instruction, found {}", t.tok.describe()),
                t.span,
                "not a known instruction",
            ));
        };
        let word = word.clone();

        // Assignment forms start with a destination register.
        if parse_reg_name(&word).is_some() {
            let (dst, dspan) = self.expect_reg("as destination")?;
            self.expect(Tok::Equals, "after the destination register")?;
            return self.parse_assign_rhs(dst, dspan);
        }

        match word.as_str() {
            "mem" => {
                self.bump();
                let (base, offset, _) = self.expect_address("after `mem`")?;
                self.expect(Tok::Equals, "after the store address")?;
                let (src, _) = self.expect_operand("as the stored value")?;
                Ok(Inst::Store { base, offset, src })
            }
            "stack" => {
                self.bump();
                self.expect(Tok::LBracket, "after `stack`")?;
                let (slot, _) = self.expect_slot("as the stored slot")?;
                self.expect(Tok::RBracket, "to close the slot")?;
                self.expect(Tok::Equals, "after the slot")?;
                let (src, _) = self.expect_operand("as the stored value")?;
                Ok(Inst::StoreStack { slot, src })
            }
            "free" => {
                self.bump();
                let (base, _) = self.expect_reg("as the freed address")?;
                Ok(Inst::Free { base })
            }
            "lock" => {
                self.bump();
                let (lock, _) = self.expect_operand("as the lock token")?;
                Ok(Inst::Lock { lock })
            }
            "unlock" => {
                self.bump();
                let (lock, _) = self.expect_operand("as the lock token")?;
                Ok(Inst::Unlock { lock })
            }
            "durable_begin" => {
                self.bump();
                Ok(Inst::DurableBegin)
            }
            "durable_end" => {
                self.bump();
                Ok(Inst::DurableEnd)
            }
            "region_marker" => {
                self.bump();
                Ok(Inst::RegionMarker)
            }
            "call" => {
                self.bump();
                let (func, args) = self.parse_call_tail()?;
                Ok(Inst::Call { func, args, ret: None })
            }
            "delay" => {
                self.bump();
                let (ns, _) = self.expect_u64("as the delay")?;
                self.expect_keyword("ns", "after the delay value")?;
                Ok(Inst::Delay { ns })
            }
            "op_begin" => {
                self.bump();
                let (kind, _) = self.expect_operand("as the op kind")?;
                Ok(Inst::OpMark { kind, begin: true })
            }
            "op_end" => {
                self.bump();
                let (kind, _) = self.expect_operand("as the op kind")?;
                Ok(Inst::OpMark { kind, begin: false })
            }
            "jump" => {
                self.bump();
                let (target, _) = self.expect_block_ref("as the jump target")?;
                Ok(Inst::Jump { target })
            }
            "br" => {
                self.bump();
                let (cond, _) = self.expect_operand("as the branch condition")?;
                self.expect(Tok::Question, "after the branch condition")?;
                let (then_bb, _) = self.expect_block_ref("as the taken target")?;
                self.expect(Tok::Colon, "between branch targets")?;
                let (else_bb, _) = self.expect_block_ref("as the fall-through target")?;
                Ok(Inst::Branch { cond, then_bb, else_bb })
            }
            "ret" => {
                self.bump();
                if matches!(self.peek().tok, Tok::Newline | Tok::Eof) {
                    Ok(Inst::Ret { val: None })
                } else {
                    let (val, _) = self.expect_operand("as the return value")?;
                    Ok(Inst::Ret { val: Some(val) })
                }
            }
            w if w.starts_with("rt.") => self.parse_rt(),
            _ => Err(LangError::new(
                format!("unknown instruction `{word}`"),
                t.span,
                "not a known instruction",
            )),
        }
    }

    fn parse_assign_rhs(&mut self, dst: Reg, _dspan: Span) -> Result<Inst, LangError> {
        let t = self.peek().clone();
        match &t.tok {
            Tok::Int(_) | Tok::Minus => {
                let (src, _) = self.expect_operand("as the moved value")?;
                Ok(Inst::Mov { dst, src })
            }
            Tok::Ident(word) => {
                let word = word.clone();
                if let Some(op) = parse_binop_name(&word) {
                    self.bump();
                    let (a, _) = self.expect_operand("as the left operand")?;
                    self.expect(Tok::Comma, "between operands")?;
                    let (b, _) = self.expect_operand("as the right operand")?;
                    return Ok(Inst::Bin { op, dst, a, b });
                }
                match word.as_str() {
                    "mem" => {
                        self.bump();
                        let (base, offset, _) = self.expect_address("after `mem`")?;
                        Ok(Inst::Load { dst, base, offset })
                    }
                    "stack" => {
                        self.bump();
                        self.expect(Tok::LBracket, "after `stack`")?;
                        let (slot, _) = self.expect_slot("as the loaded slot")?;
                        self.expect(Tok::RBracket, "to close the slot")?;
                        Ok(Inst::LoadStack { dst, slot })
                    }
                    "cas" => {
                        self.bump();
                        self.expect_keyword("mem", "after `cas`")?;
                        let (base, offset, _) = self.expect_address("after `cas mem`")?;
                        let (expected, _) = self.expect_operand("as the expected value")?;
                        self.expect(Tok::Arrow, "between expected and new values")?;
                        let (new, _) = self.expect_operand("as the new value")?;
                        Ok(Inst::Cas { dst, base, offset, expected, new })
                    }
                    "alloc" => {
                        self.bump();
                        let (size, _) = self.expect_operand("as the allocation size")?;
                        Ok(Inst::Alloc { dst, size })
                    }
                    "call" => {
                        self.bump();
                        let (func, args) = self.parse_call_tail()?;
                        Ok(Inst::Call { func, args, ret: Some(dst) })
                    }
                    _ => {
                        // A bare register: `r1 = r0`.
                        let (src, _) = self.expect_operand("as the moved value")?;
                        Ok(Inst::Mov { dst, src })
                    }
                }
            }
            other => Err(LangError::new(
                format!("expected a value after `=`, found {}", other.describe()),
                t.span,
                "not a valid right-hand side",
            )),
        }
    }

    /// `fnN(arg, ...)` after the `call` keyword. Records the site for
    /// late validation of target range and arity.
    fn parse_call_tail(&mut self) -> Result<(FuncId, Vec<Operand>), LangError> {
        let (s, span) = self.expect_ident("as the call target")?;
        let Some(id) = parse_suffixed(&s, "fn") else {
            return Err(LangError::new(
                format!("expected call target `fnN`, found `{s}`"),
                span,
                "functions are called by positional id",
            ));
        };
        self.expect(Tok::LParen, "to open the argument list")?;
        let mut args = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                let (a, _) = self.expect_operand("as a call argument")?;
                args.push(a);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        let close = self.expect(Tok::RParen, "to close the argument list")?;
        self.calls.push(CallSite {
            span: span.to(close.span),
            callee: FuncId(id),
            argc: args.len(),
        });
        Ok((FuncId(id), args))
    }

    /// `regs=[r1,r2]`-style bracketed register or slot list.
    fn parse_reg_list(&mut self, kw: &str) -> Result<Vec<Reg>, LangError> {
        self.expect_keyword(kw, "in the boundary operand list")?;
        self.expect(Tok::Equals, "after the list keyword")?;
        self.expect(Tok::LBracket, "to open the list")?;
        let mut v = Vec::new();
        if self.peek().tok != Tok::RBracket {
            loop {
                let (r, _) = self.expect_reg("in the register list")?;
                v.push(r);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBracket, "to close the list")?;
        Ok(v)
    }

    fn parse_slot_list(&mut self, kw: &str) -> Result<Vec<StackSlot>, LangError> {
        self.expect_keyword(kw, "in the boundary operand list")?;
        self.expect(Tok::Equals, "after the list keyword")?;
        self.expect(Tok::LBracket, "to open the list")?;
        let mut v = Vec::new();
        if self.peek().tok != Tok::RBracket {
            loop {
                let (s, _) = self.expect_slot("in the slot list")?;
                v.push(s);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RBracket, "to close the list")?;
        Ok(v)
    }

    /// Either `[base+o]` or `stack[sN]` — the two address forms the
    /// per-store runtime ops print.
    fn parse_rt_target(
        &mut self,
        ctx: &str,
    ) -> Result<Result<(Reg, i64), StackSlot>, LangError> {
        if matches!(&self.peek().tok, Tok::Ident(w) if w == "stack") {
            self.bump();
            self.expect(Tok::LBracket, "after `stack`")?;
            let (slot, _) = self.expect_slot(ctx)?;
            self.expect(Tok::RBracket, "to close the slot")?;
            Ok(Err(slot))
        } else {
            let (base, offset, _) = self.expect_address(ctx)?;
            Ok(Ok((base, offset)))
        }
    }

    fn parse_rt(&mut self) -> Result<Inst, LangError> {
        let (word, span) = self.expect_ident("as a runtime op")?;
        let rt = match word.as_str() {
            "rt.fase_begin" => RtOp::FaseBegin,
            "rt.fase_end" => RtOp::FaseEnd,
            "rt.tx_begin" => RtOp::TxBegin,
            "rt.tx_commit" => RtOp::TxCommit,
            "rt.lf_flush_window" => RtOp::LfFlushWindow,
            "rt.ido_boundary" => {
                let out_regs = self.parse_reg_list("regs")?;
                let out_slots = self.parse_slot_list("slots")?;
                RtOp::IdoBoundary { out_regs, out_slots }
            }
            "rt.ido_lock_acquired" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::IdoLockAcquired { lock }
            }
            "rt.ido_lock_releasing" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::IdoLockReleasing { lock }
            }
            "rt.justdo_lock_acquired" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::JustDoLockAcquired { lock }
            }
            "rt.justdo_lock_releasing" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::JustDoLockReleasing { lock }
            }
            "rt.atlas_lock_acquired" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::AtlasLockAcquired { lock }
            }
            "rt.atlas_lock_releasing" => {
                let (lock, _) = self.expect_operand("as the lock token")?;
                RtOp::AtlasLockReleasing { lock }
            }
            "rt.justdo_shadow" => {
                let (reg, _) = self.expect_reg("as the shadowed register")?;
                RtOp::JustDoShadow { reg }
            }
            "rt.justdo_log" => {
                let target = self.parse_rt_target("as the logged location")?;
                self.expect(Tok::LArrow, "before the logged value")?;
                let (value, _) = self.expect_operand("as the logged value")?;
                match target {
                    Ok((base, offset)) => RtOp::JustDoLog { base, offset, value },
                    Err(slot) => RtOp::JustDoLogStack { slot, value },
                }
            }
            "rt.atlas_undo" => match self.parse_rt_target("as the logged location")? {
                Ok((base, offset)) => RtOp::AtlasUndoLog { base, offset },
                Err(slot) => RtOp::AtlasUndoLogStack { slot },
            },
            "rt.nvml_tx_add" => match self.parse_rt_target("as the snapshotted location")? {
                Ok((base, offset)) => RtOp::NvmlTxAdd { base, offset },
                Err(slot) => RtOp::NvmlTxAddStack { slot },
            },
            "rt.nvthreads_page_touch" => {
                match self.parse_rt_target("as the touched location")? {
                    Ok((base, offset)) => RtOp::NvthreadsPageTouch { base, offset },
                    Err(slot) => RtOp::NvthreadsPageTouchStack { slot },
                }
            }
            "rt.lf_cas_prepare" => {
                let (base, offset, _) = self.expect_address("as the CAS cell")?;
                let (expected, _) = self.expect_operand("as the expected value")?;
                self.expect(Tok::Arrow, "between expected and new values")?;
                let (new, _) = self.expect_operand("as the new value")?;
                RtOp::LfCasPrepare { base, offset, expected, new }
            }
            "rt.lf_cas_publish" => {
                let (base, offset, _) = self.expect_address("as the CAS cell")?;
                self.expect_keyword("taken", "after the CAS cell")?;
                self.expect(Tok::Equals, "after `taken`")?;
                let (taken, _) = self.expect_reg("as the CAS result register")?;
                RtOp::LfCasPublish { base, offset, taken }
            }
            _ => {
                return Err(LangError::new(
                    format!("unknown runtime op `{word}`"),
                    span,
                    "not a known `rt.` mnemonic",
                ))
            }
        };
        Ok(Inst::Rt(rt))
    }
}

/// `r12` / `f3` → a register, or `None` if the name is not a register.
fn parse_reg_name(s: &str) -> Option<Reg> {
    if let Some(id) = parse_suffixed(s, "r") {
        Some(Reg::int(id))
    } else {
        parse_suffixed(s, "f").map(Reg::float)
    }
}

/// `<prefix><digits>` → the digits as a u32 (no extra characters, at
/// least one digit, must fit).
fn parse_suffixed(s: &str, prefix: &str) -> Option<u32> {
    let digits = s.strip_prefix(prefix)?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

fn parse_binop_name(s: &str) -> Option<BinOp> {
    Some(match s {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "eq" => BinOp::Eq,
        "ne" => BinOp::Ne,
        "lt" => BinOp::Lt,
        "le" => BinOp::Le,
        "gt" => BinOp::Gt,
        "ge" => BinOp::Ge,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> ParsedProgram {
        parse_program_text(src).unwrap_or_else(|e| panic!("{}", e.render("test.ido", src)))
    }

    #[test]
    fn round_trips_a_simple_function() {
        let src = "fn demo(r0) regs=2 slots=0 {\n  bb0:\n    r1 = add r0, 1\n    mem[r1+8] = 7\n    ret r1\n}\n";
        let p = parse(src);
        assert_eq!(format!("{}", p.program), src);
    }

    #[test]
    fn negative_offsets_and_immediates_round_trip() {
        let src = "fn demo(r0) regs=2 slots=0 {\n  bb0:\n    r1 = -9223372036854775808\n    mem[r0-8] = r1\n    r1 = mem[r0-9223372036854775808]\n    ret\n}\n";
        let p = parse(src);
        assert_eq!(format!("{}", p.program), src);
        let f = p.program.function(FuncId(0));
        assert!(matches!(
            f.block(BlockId(0)).insts[0],
            Inst::Mov { src: Operand::Imm(i64::MIN), .. }
        ));
        assert!(matches!(
            f.block(BlockId(0)).insts[2],
            Inst::Load { offset: i64::MIN, .. }
        ));
    }

    #[test]
    fn quoted_names_round_trip() {
        let src = "fn \"list push\"() regs=0 slots=0 {\n  bb0:\n    ret\n}\n";
        let p = parse(src);
        assert_eq!(p.program.function(FuncId(0)).name(), "list push");
        assert_eq!(format!("{}", p.program), src);
    }

    #[test]
    fn calls_branches_and_slots_parse() {
        let src = "fn main() regs=1 slots=1 {\n  bb0:\n    stack[s0] = 5\n    r0 = call fn1(3, r0)\n    br r0 ? bb1 : bb2\n  bb1:\n    ret r0\n  bb2:\n    jump bb1\n}\n\nfn callee(r0, r1) regs=2 slots=0 {\n  bb0:\n    ret r0\n}\n";
        let p = parse(src);
        assert_eq!(p.program.functions().len(), 2);
        assert_eq!(format!("{}", p.program), src);
    }

    #[test]
    fn rt_ops_round_trip() {
        let src = "fn w(r0, r1) regs=6 slots=1 {\n  bb0:\n    rt.fase_begin\n    rt.ido_boundary regs=[r1,r2] slots=[s0]\n    rt.justdo_log [r0+0] <- r1\n    rt.justdo_log stack[s0] <- 3\n    rt.atlas_undo [r0+8]\n    rt.atlas_undo stack[s0]\n    rt.nvml_tx_add [r0+16]\n    rt.nvthreads_page_touch stack[s0]\n    rt.lf_flush_window\n    rt.lf_cas_prepare [r0+0] r1 -> 7\n    r5 = cas mem[r0+0] r1 -> 7\n    rt.lf_cas_publish [r0+0] taken=r5\n    rt.justdo_shadow r5\n    rt.fase_end\n    ret\n}\n";
        let p = parse(src);
        assert_eq!(format!("{}", p.program), src);
    }

    #[test]
    fn op_marks_delay_locks_alloc_round_trip() {
        let src = "fn w(r0) regs=2 slots=0 {\n  bb0:\n    op_begin 1\n    lock r0\n    r1 = alloc 64\n    free r1\n    durable_begin\n    delay 100ns\n    durable_end\n    unlock r0\n    op_end 1\n    region_marker\n    ret\n}\n";
        let p = parse(src);
        assert_eq!(format!("{}", p.program), src);
    }

    #[test]
    fn inst_spans_cover_source_lines() {
        let src = "fn w() regs=1 slots=0 {\n  bb0:\n    r0 = 1\n    ret r0\n}\n";
        let p = parse(src);
        let span = p.inst_spans[&(0, 0, 0)];
        assert_eq!(&src[span.start..span.end], "r0 = 1");
        let span = p.inst_spans[&(0, 0, 1)];
        assert_eq!(&src[span.start..span.end], "ret r0");
    }

    #[test]
    fn reg_above_declared_count_is_a_two_label_error() {
        let src = "fn w() regs=1 slots=0 {\n  bb0:\n    r4 = 1\n    ret\n}\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("r4"), "{e:?}");
        assert!(e.message.contains("regs=1"), "{e:?}");
        assert_eq!(&src[e.primary.span.start..e.primary.span.end], "r4");
        assert_eq!(e.secondary.len(), 1);
        assert_eq!(
            &src[e.secondary[0].span.start..e.secondary[0].span.end],
            "regs=1"
        );
    }

    #[test]
    fn missing_counts_are_inferred() {
        let src = "fn w(r0) {\n  bb0:\n    r3 = add r0, 1\n    stack[s2] = r3\n    ret\n}\n";
        let p = parse(src);
        let f = p.program.function(FuncId(0));
        assert_eq!(f.num_regs(), 4);
        assert_eq!(f.num_stack_slots(), 3);
    }

    #[test]
    fn out_of_range_call_target_is_caught() {
        let src = "fn w() regs=0 slots=0 {\n  bb0:\n    call fn7()\n    ret\n}\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("fn7"), "{e:?}");
    }

    #[test]
    fn call_arity_mismatch_points_at_both_sites() {
        let src = "fn w() regs=0 slots=0 {\n  bb0:\n    call fn1(1, 2)\n    ret\n}\n\nfn callee(r0) regs=1 slots=0 {\n  bb0:\n    ret\n}\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("2 argument"), "{e:?}");
        assert_eq!(e.secondary.len(), 1, "{e:?}");
    }

    #[test]
    fn non_dense_block_labels_are_rejected() {
        let src = "fn w() regs=0 slots=0 {\n  bb0:\n    ret\n  bb2:\n    ret\n}\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("expected `bb1`"), "{e:?}");
    }

    #[test]
    fn missing_terminator_is_reported_via_ir_verify() {
        let src = "fn w() regs=1 slots=0 {\n  bb0:\n    r0 = 1\n}\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("verification"), "{e:?}");
    }

    #[test]
    fn unclosed_body_points_at_the_header() {
        let src = "fn w() regs=0 slots=0 {\n  bb0:\n    ret\n";
        let e = parse_program_text(src).unwrap_err();
        assert!(e.message.contains("unclosed"), "{e:?}");
        assert_eq!(e.secondary.len(), 1);
    }
}
