//! Rendering verifier diagnostics against a source listing.
//!
//! `ido-verify` diagnostics point into the **instrumented** program —
//! `(function, block, index)` positions that exist only after the
//! per-scheme instrumentation pass ran, so they have no spans into the
//! original `.ido` file. The [`Listing`] bridges that gap: it
//! pretty-prints the instrumented program with line numbers and maps
//! every instruction position to its line, so a witness path renders as
//! a sequence of real, numbered source lines with the violating
//! instruction underlined.

use std::collections::HashMap;
use std::fmt::Write as _;

use ido_ir::{FnName, Program};
use ido_verify::Diagnostic;

/// A line-numbered pretty-printed program with a position index.
pub struct Listing {
    lines: Vec<String>,
    /// `(function name, block id, instruction index)` → 0-based line.
    index: HashMap<(String, u32, u32), usize>,
}

impl Listing {
    /// Builds the listing for `program` (typically the *instrumented*
    /// program a verifier run was pointed at).
    pub fn new(program: &Program) -> Listing {
        let mut lines = Vec::new();
        let mut index = HashMap::new();
        for (fi, func) in program.functions().iter().enumerate() {
            if fi > 0 {
                lines.push(String::new());
            }
            let mut header = format!("fn {}(", FnName(func.name()));
            for (i, p) in func.params().iter().enumerate() {
                if i > 0 {
                    header.push_str(", ");
                }
                let _ = write!(header, "{p}");
            }
            let _ = write!(
                header,
                ") regs={} slots={} {{",
                func.num_regs(),
                func.num_stack_slots()
            );
            lines.push(header);
            for (bi, bb) in func.blocks().iter().enumerate() {
                lines.push(format!("  bb{bi}:"));
                for (ii, inst) in bb.insts.iter().enumerate() {
                    index.insert(
                        (func.name().to_string(), bi as u32, ii as u32),
                        lines.len(),
                    );
                    lines.push(format!("    {inst}"));
                }
            }
            lines.push("}".to_string());
        }
        Listing { lines, index }
    }

    /// The full listing text (identical to the program's `Display`).
    pub fn text(&self) -> String {
        let mut s = self.lines.join("\n");
        s.push('\n');
        s
    }

    /// 1-based line number of an instruction, if the position exists.
    pub fn line_of(&self, function: &str, block: u32, inst: u32) -> Option<usize> {
        self.index.get(&(function.to_string(), block, inst)).map(|&l| l + 1)
    }

    /// Text of a 1-based line.
    pub fn line_text(&self, line: usize) -> Option<&str> {
        self.lines.get(line.checked_sub(1)?).map(String::as_str)
    }

    /// Number of lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True when the listing is empty (an empty program).
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Renders one verifier diagnostic against the listing: an
/// `error[invariant]` header, the violating instruction excerpted with a
/// caret run, then the witness path as numbered, line-anchored steps.
pub fn render_diagnostic(d: &Diagnostic, listing: &Listing) -> String {
    let mut out = format!("error[{}]: {}\n", d.invariant, d.message);
    let _ = writeln!(out, "  scheme {}, function `{}`", d.scheme, d.function);

    // Anchored excerpt with a caret under the violating instruction.
    if let Some((b, i)) = d.pos {
        match listing.line_of(&d.function, b.0, i as u32) {
            Some(line) => {
                let text = listing.line_text(line).unwrap_or("");
                let lineno = format!("{line}");
                let pad = " ".repeat(lineno.len());
                let _ = writeln!(out, "  --> listing line {line} (b{}:{i})", b.0);
                let _ = writeln!(out, "   {lineno} | {text}");
                let indent = text.len() - text.trim_start().len();
                let carets = "^".repeat(text.trim_start().len().max(1));
                let _ = writeln!(
                    out,
                    "   {pad} | {}{carets} violating instruction",
                    " ".repeat(indent)
                );
            }
            None => {
                let _ = writeln!(out, "  at b{}:{i} (position not in listing)", b.0);
            }
        }
    }

    // Witness path: origin first, violation last.
    if !d.witness.is_empty() {
        let _ = writeln!(out, "  witness path:");
        for (step, &(b, i)) in d.witness.iter().enumerate() {
            match listing.line_of(&d.function, b.0, i as u32) {
                Some(line) => {
                    let text = listing.line_text(line).map(str::trim_start).unwrap_or("");
                    let _ = writeln!(
                        out,
                        "    {}. b{}:{} line {line}: {text}",
                        step + 1,
                        b.0,
                        i
                    );
                }
                None => {
                    let _ = writeln!(out, "    {}. b{}:{} (not in listing)", step + 1, b.0, i);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program_text;
    use ido_compiler::Scheme;
    use ido_ir::BlockId;
    use ido_verify::Invariant;

    fn demo_program() -> Program {
        parse_program_text(
            "fn worker(r0) regs=2 slots=0 {\n  bb0:\n    lock r0\n    mem[r0+8] = 1\n    unlock r0\n    ret\n}\n",
        )
        .unwrap()
        .program
    }

    #[test]
    fn listing_matches_program_display_and_indexes_lines() {
        let p = demo_program();
        let l = Listing::new(&p);
        assert_eq!(l.text(), format!("{p}"));
        assert_eq!(l.line_of("worker", 0, 0), Some(3));
        assert_eq!(l.line_text(3), Some("    lock r0"));
        assert_eq!(l.line_of("worker", 0, 3), Some(6));
        assert_eq!(l.line_of("worker", 9, 0), None);
        assert_eq!(l.line_of("nope", 0, 0), None);
        assert!(!l.is_empty());
        assert_eq!(l.len(), 7);
    }

    #[test]
    fn render_shows_caret_and_witness_lines() {
        let p = demo_program();
        let l = Listing::new(&p);
        let d = Diagnostic {
            scheme: Scheme::Ido,
            function: "worker".into(),
            pos: Some((BlockId(0), 1)),
            invariant: Invariant::BoundaryCoverage,
            message: "store not covered by a boundary".into(),
            witness: vec![(BlockId(0), 0), (BlockId(0), 1)],
        };
        let r = render_diagnostic(&d, &l);
        assert!(r.contains("error[boundary-coverage]: store not covered"), "{r}");
        assert!(r.contains("scheme iDO, function `worker`"), "{r}");
        assert!(r.contains("--> listing line 4 (b0:1)"), "{r}");
        assert!(r.contains("    mem[r0+8] = 1"), "{r}");
        assert!(r.contains("^^^^^^^^^^^^^ violating instruction"), "{r}");
        assert!(r.contains("1. b0:0 line 3: lock r0"), "{r}");
        assert!(r.contains("2. b0:1 line 4: mem[r0+8] = 1"), "{r}");
    }

    #[test]
    fn render_survives_positions_outside_the_listing() {
        let p = demo_program();
        let l = Listing::new(&p);
        let d = Diagnostic {
            scheme: Scheme::Atlas,
            function: "<runtime log layout>".into(),
            pos: None,
            invariant: Invariant::LogLayout,
            message: "entry straddles a cache line".into(),
            witness: vec![],
        };
        let r = render_diagnostic(&d, &l);
        assert!(r.contains("error[log-layout]"), "{r}");
        assert!(!r.contains("listing line"), "{r}");
    }
}
