//! Spanned, multi-label diagnostics for the textual frontend.
//!
//! Every error the lexer, parser, or scenario layer reports carries at
//! least one byte span into the source it was parsing, so the renderer
//! can show the offending line with a caret. Secondary labels point at
//! related positions (the duplicate key's first occurrence, the `regs=`
//! header a register count violates, …).

use std::fmt;

/// A half-open byte range `[start, end)` into a source string. Spans are
/// produced by the lexer and never extend past `source.len()`; an
/// end-of-input span is `[len, len)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the spanned text.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// True when the span lies within a source of `len` bytes.
    pub fn in_bounds(&self, len: usize) -> bool {
        self.start <= self.end && self.end <= len
    }
}

/// One labeled position inside a diagnostic.
#[derive(Debug, Clone)]
pub struct Label {
    /// Where.
    pub span: Span,
    /// What this position contributes to the error.
    pub message: String,
}

/// A frontend error: a headline message, a primary label, and any number
/// of secondary labels pointing at related source positions.
#[derive(Debug, Clone)]
pub struct LangError {
    /// Headline statement of the problem.
    pub message: String,
    /// The position the error is *at*.
    pub primary: Label,
    /// Related positions (first definition, enclosing construct, …).
    pub secondary: Vec<Label>,
}

impl LangError {
    /// An error with only a primary label.
    pub fn new(message: impl Into<String>, span: Span, label: impl Into<String>) -> LangError {
        LangError {
            message: message.into(),
            primary: Label { span, message: label.into() },
            secondary: Vec::new(),
        }
    }

    /// Adds a secondary label.
    pub fn with_note(mut self, span: Span, message: impl Into<String>) -> LangError {
        self.secondary.push(Label { span, message: message.into() });
        self
    }

    /// Renders the error against the source it was produced from, with a
    /// line/column header, the source line, and a caret run under the
    /// spanned text — one block per label.
    pub fn render(&self, filename: &str, source: &str) -> String {
        let mut out = format!("error: {}\n", self.message);
        render_label(&mut out, filename, source, &self.primary, true);
        for l in &self.secondary {
            render_label(&mut out, filename, source, l, false);
        }
        out
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// 1-based `(line, column)` of a byte offset.
fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(source.len());
    let before = &source.as_bytes()[..offset];
    let line = before.iter().filter(|&&b| b == b'\n').count() + 1;
    let line_start = before.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    (line, offset - line_start + 1)
}

/// The full text of the line containing `offset` (no trailing newline).
fn line_text(source: &str, offset: usize) -> (&str, usize) {
    let offset = offset.min(source.len());
    let start = source.as_bytes()[..offset]
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |p| p + 1);
    let end = source.as_bytes()[offset..]
        .iter()
        .position(|&b| b == b'\n')
        .map_or(source.len(), |p| offset + p);
    (&source[start..end], start)
}

fn render_label(out: &mut String, filename: &str, source: &str, label: &Label, primary: bool) {
    let (line, col) = line_col(source, label.span.start);
    let (text, line_start) = line_text(source, label.span.start);
    let kind = if primary { "-->" } else { "note:" };
    out.push_str(&format!("  {kind} {filename}:{line}:{col}\n"));
    let lineno = format!("{line}");
    let pad = " ".repeat(lineno.len());
    out.push_str(&format!("   {lineno} | {text}\n"));
    // Caret run under the spanned bytes of this line (at least one caret;
    // clamp to the line's end for multi-line spans).
    let from = label.span.start.saturating_sub(line_start);
    let upto = label.span.end.saturating_sub(line_start).min(text.len()).max(from + 1);
    let marker = if primary { '^' } else { '-' };
    let mut underline = String::new();
    for (i, ch) in text.char_indices() {
        if i >= upto {
            break;
        }
        if i < from {
            // Preserve alignment under tabs.
            underline.push(if ch == '\t' { '\t' } else { ' ' });
        } else {
            underline.push(marker);
        }
    }
    if underline.len() < from + 1 {
        // Span starts at or past end of line (e.g. at the newline).
        while underline.len() < from {
            underline.push(' ');
        }
        underline.push(marker);
    }
    out.push_str(&format!("   {pad} | {underline} {}\n", label.message));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_line_caret_and_notes() {
        let src = "scenario demo {\n  threads 2\n  threads 4\n}\n";
        let second = src.rfind("threads").unwrap();
        let first = src.find("threads").unwrap();
        let e = LangError::new(
            "duplicate key `threads`",
            Span::new(second, second + 7),
            "redefined here",
        )
        .with_note(Span::new(first, first + 7), "first defined here");
        let r = e.render("demo.ido", src);
        assert!(r.contains("error: duplicate key `threads`"), "{r}");
        assert!(r.contains("demo.ido:3:3"), "{r}");
        assert!(r.contains("^^^^^^^ redefined here"), "{r}");
        assert!(r.contains("demo.ido:2:3"), "{r}");
        assert!(r.contains("------- first defined here"), "{r}");
    }

    #[test]
    fn end_of_input_span_renders() {
        let src = "fn f() regs=0 slots=0 {";
        let e = LangError::new("unclosed block", Span::new(src.len(), src.len()), "expected `}`");
        let r = e.render("x.ido", src);
        assert!(r.contains("x.ido:1:24"), "{r}");
        assert!(r.contains("expected `}`"), "{r}");
    }

    #[test]
    fn span_utilities() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.to(b), Span::new(3, 12));
        assert!(a.in_bounds(5));
        assert!(!b.in_bounds(11));
        assert_eq!(line_col("ab\ncd", 4), (2, 2));
    }
}
