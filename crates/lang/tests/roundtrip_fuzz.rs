//! Property fuzz for the textual IR: `parse(pretty(p)) == p` for random
//! well-formed programs (ISSUE 10 satellite #3's regression harness).
//!
//! Programs are assembled structurally — random instruction mixes over
//! every `Inst` and `RtOp` shape the pretty-printer can emit, extreme
//! immediates and offsets included (`i64::MIN` has no positive
//! magnitude, so both printer and parser must special-case it) — then
//! round-tripped: pretty-print, re-parse, compare the structures for
//! equality, and pretty-print again to confirm the text is a fixpoint.

use ido_ir::{
    BasicBlock, BinOp, BlockId, FnName, FuncId, Function, Inst, Operand, Program, Reg, RtOp,
    StackSlot,
};
use ido_lang::parse_program_text;
use proptest::prelude::*;

const NUM_REGS: u32 = 8;
const NUM_SLOTS: u32 = 4;

fn reg() -> BoxedStrategy<Reg> {
    (0u32..NUM_REGS).prop_map(Reg::int).boxed()
}

fn slot() -> BoxedStrategy<StackSlot> {
    (0u32..NUM_SLOTS).prop_map(StackSlot).boxed()
}

fn imm() -> BoxedStrategy<i64> {
    prop_oneof![
        4 => -64i64..64,
        1 => Just(i64::MIN),
        1 => Just(i64::MAX),
    ]
    .boxed()
}

fn operand() -> BoxedStrategy<Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        imm().prop_map(Operand::Imm),
    ]
    .boxed()
}

/// Address offsets: mostly small and aligned, but also negative and the
/// unnegatable extreme.
fn offset() -> BoxedStrategy<i64> {
    prop_oneof![
        4 => (0i64..64).prop_map(|v| v * 8),
        2 => (-64i64..0).prop_map(|v| v * 8),
        1 => Just(i64::MIN),
        1 => Just(i64::MAX - 7),
    ]
    .boxed()
}

fn binop() -> BoxedStrategy<BinOp> {
    prop::sample::select(vec![
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Rem,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
        BinOp::Eq,
        BinOp::Ne,
        BinOp::Lt,
        BinOp::Le,
        BinOp::Gt,
        BinOp::Ge,
    ])
    .boxed()
}

/// Instrumentation runtime ops — every shape the pretty-printer emits.
fn rt_op() -> BoxedStrategy<RtOp> {
    prop_oneof![
        Just(RtOp::FaseBegin),
        Just(RtOp::FaseEnd),
        Just(RtOp::TxBegin),
        Just(RtOp::TxCommit),
        Just(RtOp::LfFlushWindow),
        (
            prop::collection::vec(reg(), 0..3),
            prop::collection::vec(slot(), 0..3)
        )
            .prop_map(|(out_regs, out_slots)| RtOp::IdoBoundary { out_regs, out_slots }),
        operand().prop_map(|lock| RtOp::IdoLockAcquired { lock }),
        operand().prop_map(|lock| RtOp::IdoLockReleasing { lock }),
        operand().prop_map(|lock| RtOp::JustDoLockAcquired { lock }),
        operand().prop_map(|lock| RtOp::JustDoLockReleasing { lock }),
        operand().prop_map(|lock| RtOp::AtlasLockAcquired { lock }),
        operand().prop_map(|lock| RtOp::AtlasLockReleasing { lock }),
        (reg(), offset(), operand())
            .prop_map(|(base, offset, value)| RtOp::JustDoLog { base, offset, value }),
        (slot(), operand()).prop_map(|(slot, value)| RtOp::JustDoLogStack { slot, value }),
        reg().prop_map(|reg| RtOp::JustDoShadow { reg }),
        (reg(), offset()).prop_map(|(base, offset)| RtOp::AtlasUndoLog { base, offset }),
        slot().prop_map(|slot| RtOp::AtlasUndoLogStack { slot }),
        (reg(), offset()).prop_map(|(base, offset)| RtOp::NvmlTxAdd { base, offset }),
        slot().prop_map(|slot| RtOp::NvmlTxAddStack { slot }),
        (reg(), offset()).prop_map(|(base, offset)| RtOp::NvthreadsPageTouch { base, offset }),
        slot().prop_map(|slot| RtOp::NvthreadsPageTouchStack { slot }),
        (reg(), offset(), operand(), operand()).prop_map(|(base, offset, expected, new)| {
            RtOp::LfCasPrepare { base, offset, expected, new }
        }),
        (reg(), offset(), reg())
            .prop_map(|(base, offset, taken)| RtOp::LfCasPublish { base, offset, taken }),
    ]
    .boxed()
}

/// Non-terminator instructions.
fn mid_inst() -> BoxedStrategy<Inst> {
    prop_oneof![
        (reg(), operand()).prop_map(|(dst, src)| Inst::Mov { dst, src }),
        (binop(), reg(), operand(), operand())
            .prop_map(|(op, dst, a, b)| Inst::Bin { op, dst, a, b }),
        (reg(), slot()).prop_map(|(dst, slot)| Inst::LoadStack { dst, slot }),
        (slot(), operand()).prop_map(|(slot, src)| Inst::StoreStack { slot, src }),
        (reg(), reg(), offset()).prop_map(|(dst, base, offset)| Inst::Load { dst, base, offset }),
        (reg(), offset(), operand()).prop_map(|(base, offset, src)| Inst::Store { base, offset, src }),
        (reg(), reg(), offset(), operand(), operand()).prop_map(
            |(dst, base, offset, expected, new)| Inst::Cas { dst, base, offset, expected, new }
        ),
        (reg(), operand()).prop_map(|(dst, size)| Inst::Alloc { dst, size }),
        reg().prop_map(|base| Inst::Free { base }),
        operand().prop_map(|lock| Inst::Lock { lock }),
        operand().prop_map(|lock| Inst::Unlock { lock }),
        Just(Inst::DurableBegin),
        Just(Inst::DurableEnd),
        Just(Inst::RegionMarker),
        prop_oneof![3 => 0u64..10_000, 1 => Just(u64::MAX)].prop_map(|ns| Inst::Delay { ns }),
        (operand(), prop::bool::ANY).prop_map(|(kind, begin)| Inst::OpMark { kind, begin }),
        // Calls target the fixed one-parameter helper (FuncId 0).
        (operand(), reg(), prop::bool::ANY).prop_map(|(arg, r, wants_ret)| Inst::Call {
            func: FuncId(0),
            args: vec![arg],
            ret: wants_ret.then_some(r),
        }),
        rt_op().prop_map(Inst::Rt),
        rt_op().prop_map(Inst::Rt),
        rt_op().prop_map(Inst::Rt),
    ]
    .boxed()
}

/// One block, pre-resolution: instructions plus raw terminator picks whose
/// block targets are clamped modulo the final block count.
fn raw_block() -> BoxedStrategy<(Vec<Inst>, u8, u32, u32, Operand)> {
    (
        prop::collection::vec(mid_inst(), 0..6),
        0u8..3,
        0u32..8,
        0u32..8,
        operand(),
    )
        .boxed()
}

/// The fixed callee every generated `call` targets.
fn helper() -> Function {
    let r0 = Reg::int(0);
    Function::from_raw_parts(
        "helper".to_string(),
        vec![r0],
        vec![BasicBlock { insts: vec![Inst::Ret { val: Some(Operand::Reg(r0)) }] }],
        NUM_REGS,
        NUM_SLOTS,
    )
}

fn assemble(name: &str, raw: Vec<(Vec<Inst>, u8, u32, u32, Operand)>) -> Function {
    let n = raw.len() as u32;
    let blocks = raw
        .into_iter()
        .map(|(mut insts, kind, t1, t2, cond)| {
            insts.push(match kind {
                0 => Inst::Ret { val: (t1 & 1 == 1).then_some(cond) },
                1 => Inst::Jump { target: BlockId(t1 % n) },
                _ => Inst::Branch { cond, then_bb: BlockId(t1 % n), else_bb: BlockId(t2 % n) },
            });
            BasicBlock { insts }
        })
        .collect();
    Function::from_raw_parts(
        name.to_string(),
        vec![Reg::int(0), Reg::int(1)],
        blocks,
        NUM_REGS,
        NUM_SLOTS,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The headline property: pretty-print a random program, re-parse it,
    /// and the structures must be equal — and the text a fixpoint.
    #[test]
    fn parse_pretty_roundtrip(
        worker_raw in prop::collection::vec(raw_block(), 1..4),
        extra_raw in prop::collection::vec(raw_block(), 1..3),
    ) {
        let mut program = Program::new();
        program.add_function(helper());
        program.add_function(assemble("worker", worker_raw));
        // A name the pretty-printer must quote (space + punctuation).
        program.add_function(assemble("odd name!", extra_raw));

        let printed = format!("{program}");
        let reparsed = parse_program_text(&printed)
            .unwrap_or_else(|e| panic!("reparse failed:\n{}", e.render("fuzz", &printed)))
            .program;
        prop_assert_eq!(&reparsed, &program, "structures diverge for:\n{}", printed);
        prop_assert_eq!(format!("{reparsed}"), printed, "pretty-print is not a fixpoint");
    }
}

/// The quoting helper the fuzzer leans on must stay in the canonical form
/// the parser understands (a guard for the `FnName` escape rules).
#[test]
fn quoted_names_round_trip_exactly() {
    for name in ["odd name!", "tab\there", "quote\"inside", "back\\slash", ""] {
        let quoted = format!("{}", FnName(name));
        let src = format!("fn {quoted}() regs=1 slots=0 {{\n  bb0:\n    ret\n}}\n");
        let p = parse_program_text(&src)
            .unwrap_or_else(|e| panic!("{}", e.render("quoting", &src)))
            .program;
        assert_eq!(p.functions()[0].name(), name);
        assert_eq!(format!("{p}"), src);
    }
}
