//! Golden tests for parser and scenario diagnostics (ISSUE 10 satellite
//! #4): the rendered output — message, file:line:col arrow, source
//! excerpt, caret run, secondary notes — is pinned byte-for-byte, so a
//! refactor that shifts a span or drops a note fails loudly.
//!
//! Regenerate with `IDO_BLESS=1 cargo test -p ido-lang --test
//! diagnostics_golden` after an intentional change, and review the diff.

use std::path::PathBuf;

use ido_lang::{parse_program_text, parse_scenario};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("diag_{name}.txt"))
}

fn check(name: &str, got: &str) {
    let bless = std::env::var("IDO_BLESS").is_ok_and(|v| v == "1");
    let path = golden_path(name);
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); regenerate with IDO_BLESS=1", path.display())
    });
    assert_eq!(
        got,
        want,
        "diagnostic `{name}` diverged from {} — if intentional, regenerate with IDO_BLESS=1",
        path.display()
    );
}

fn program_error(name: &str, src: &str) {
    let err = parse_program_text(src).expect_err("source must not parse");
    assert!(err.primary.span.in_bounds(src.len()), "primary span out of bounds");
    for note in &err.secondary {
        assert!(note.span.in_bounds(src.len()), "secondary span out of bounds");
    }
    check(name, &err.render(&format!("{name}.ido"), src));
}

fn scenario_error(name: &str, src: &str) {
    let err = parse_scenario(src).expect_err("scenario must not parse");
    assert!(err.primary.span.in_bounds(src.len()), "primary span out of bounds");
    check(name, &err.render(&format!("{name}.ido"), src));
}

/// A lexically bad token: the caret must sit on the exact byte.
#[test]
fn bad_token_diagnostic() {
    program_error(
        "bad_token",
        "fn worker() regs=1 slots=0 {\n  bb0:\n    r0 = 1 @ 2\n    ret\n}\n",
    );
}

/// An unclosed function body: the error carries two labels — the EOF
/// position and a note pointing back at the header that opened the body.
#[test]
fn unclosed_block_diagnostic() {
    program_error(
        "unclosed_block",
        "fn worker() regs=1 slots=0 {\n  bb0:\n    r0 = 1\n    ret\n",
    );
}

/// A register past the declared `regs=` bound: two labels again — the
/// offending use and the declaration it violates.
#[test]
fn register_bound_diagnostic() {
    program_error(
        "register_bound",
        "fn worker() regs=2 slots=0 {\n  bb0:\n    r5 = 7\n    ret\n}\n",
    );
}

/// An unknown scheme name in a scenario header.
#[test]
fn unknown_scheme_diagnostic() {
    scenario_error(
        "unknown_scheme",
        "scenario s {\n  workload stack\n  threads 1\n  ops 1\n  schemes ido pmdk\n}\n",
    );
}

/// A duplicated scenario key: primary on the second occurrence, note on
/// the first.
#[test]
fn duplicate_key_diagnostic() {
    scenario_error(
        "duplicate_key",
        "scenario s {\n  workload stack\n  threads 1\n  threads 2\n  ops 1\n}\n",
    );
}

/// Span correctness probe: the caret for a mid-line error must cover the
/// offending token exactly, which the rendered excerpt makes visible.
#[test]
fn midline_span_diagnostic() {
    program_error(
        "midline_span",
        "fn worker() regs=2 slots=1 {\n  bb0:\n    stack[s0] = r1 extra\n    ret\n}\n",
    );
}
