//! Golden for `ido explain`-style diagnostic rendering (ISSUE 10): inject
//! the `ido_bug_skip_store_flush` model bug, run the static verifier over
//! the instrumented stack workload, and pin the full rendered output —
//! header, anchored excerpt with caret, and the line-numbered witness
//! path — byte-for-byte.
//!
//! Regenerate with `IDO_BLESS=1 cargo test -p ido-lang --test
//! explain_golden` after an intentional change, and review the diff.

use std::path::PathBuf;

use ido_compiler::{instrument_program, Scheme};
use ido_lang::{render_diagnostic, Listing};
use ido_verify::{verify_instrumented, RuntimeModel};
use ido_vm::VmConfig;
use ido_workloads::micro::StackSpec;
use ido_workloads::WorkloadSpec;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/explain_skip_store_flush.txt")
}

/// The full explain rendering of every finding the verifier produces for
/// the sabotaged runtime model, against the instrumented listing.
fn rendered_findings() -> String {
    let inst =
        instrument_program(StackSpec.build_program(), Scheme::Ido).expect("instruments cleanly");
    let mut cfg = VmConfig::for_tests();
    cfg.ido_bug_skip_store_flush = true;
    let model = RuntimeModel::from_config(&cfg);
    let findings = verify_instrumented(&inst, &model);
    assert!(
        !findings.is_empty(),
        "the skip-store-flush injection must produce at least one finding"
    );
    let listing = Listing::new(&inst.program);
    let mut out = String::new();
    for d in &findings {
        out.push_str(&render_diagnostic(d, &listing));
        out.push('\n');
    }
    out
}

#[test]
fn explain_rendering_matches_the_checked_in_golden() {
    let got = rendered_findings();
    // Every rendered finding must anchor its violating instruction and
    // witness steps to real listing lines — no "(not in listing)" holes.
    assert!(!got.contains("not in listing"), "unanchored position in:\n{got}");
    assert!(got.contains("witness path:"), "no witness path rendered:\n{got}");

    let bless = std::env::var("IDO_BLESS").is_ok_and(|v| v == "1");
    let path = golden_path();
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); regenerate with IDO_BLESS=1", path.display())
    });
    assert_eq!(
        got,
        want,
        "explain rendering diverged from {} — if intentional, regenerate with IDO_BLESS=1",
        path.display()
    );
}

/// The same verifier run against the *honest* model must be clean — the
/// golden above documents the injected bug, not a real one.
#[test]
fn honest_model_produces_no_findings_to_explain() {
    let inst =
        instrument_program(StackSpec.build_program(), Scheme::Ido).expect("instruments cleanly");
    let model = RuntimeModel::from_config(&VmConfig::for_tests());
    let findings = verify_instrumented(&inst, &model);
    assert!(findings.is_empty(), "unexpected findings: {findings:?}");
}
