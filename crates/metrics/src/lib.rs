//! Deterministic windowed service metrics over the simulated clock.
//!
//! ido-trace answers "where did simulated time go" in aggregate; this
//! crate answers the questions a service is judged on: per-operation
//! latency quantiles, throughput over time, and what clients observe
//! *while a shard recovers*. Everything is driven by simulated
//! nanoseconds, so every series is byte-identical across runs and across
//! `IDO_JOBS` settings — wall-clock time never enters the data.
//!
//! The layer mirrors the trace subsystem's shape:
//!
//! * **Emission** ([`MetricsHandle`] / [`MetricsBuf`]): the disabled path
//!   is one branch on a null-pointer-optimized `Option<Box<_>>`; the
//!   enabled path records op begin/end spans into preallocated inline
//!   arrays and a window vector sized up front — nothing allocates per
//!   step (pinned by `workloads/tests/no_alloc_hot_loop.rs`).
//! * **Timeline composition**: each buffer carries a `base_ns` offset
//!   added to the emitting handle's segment-local clock, so a run that
//!   crashes and recovers can lay its pre-crash, recovery, and post-crash
//!   segments onto one global windowed timeline (the pool's
//!   `set_metrics` mirrors `set_trace`: it only affects handles created
//!   afterwards).
//! * **Aggregation** ([`ServiceMetrics`]): cell-wise merged windows
//!   (ops/window goodput per op kind, latency [`Hist`] with exact
//!   quantile extraction, persist-counter deltas, recovery-phase ns),
//!   exported as CSV rows, a Prometheus-style text snapshot, and
//!   Perfetto counter tracks.

#![deny(missing_docs)]

use ido_trace::chrome::ChromeTrace;
use ido_trace::{Hist, RecoveryPhase, RECOVERY_PHASES};

/// Number of distinct operation kinds (0 = generic, 1 = get, 2 = put).
pub const OP_KINDS: usize = 3;

/// Stable display names for the op kinds, by index.
pub const OP_KIND_NAMES: [&str; OP_KINDS] = ["generic", "get", "put"];

/// Windows preallocated per buffer so the hot path never allocates while
/// the composed timeline stays under this many windows (growth beyond is
/// amortized and happens only at a window-boundary crossing).
pub const PREALLOC_WINDOWS: usize = 64;

/// Default window width: 1 simulated millisecond.
pub const DEFAULT_WINDOW_NS: u64 = 1_000_000;

/// Pool-level metrics configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Whether handles created from the pool carry metrics buffers.
    pub enabled: bool,
    /// Window width in simulated ns (at least 1 when enabled).
    pub window_ns: u64,
    /// Global-timeline offset added to every handle-local timestamp.
    pub base_ns: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig { enabled: false, window_ns: DEFAULT_WINDOW_NS, base_ns: 0 }
    }
}

impl MetricsConfig {
    /// An enabled config with the default window width at base 0.
    pub fn on() -> Self {
        MetricsConfig { enabled: true, ..MetricsConfig::default() }
    }

    /// An enabled config with the given window width at base 0.
    pub fn with_window(window_ns: u64) -> Self {
        MetricsConfig { enabled: true, window_ns: window_ns.max(1), base_ns: 0 }
    }

    /// The same config with a different timeline base.
    pub fn at_base(self, base_ns: u64) -> Self {
        MetricsConfig { base_ns, ..self }
    }
}

/// Persist-activity counters — a metrics-layer mirror of the NVM pool's
/// `StatsSnapshot` (ido-metrics cannot depend on ido-nvm, which depends
/// on it; the pool converts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Persistent-heap loads.
    pub loads: u64,
    /// Cached persistent-heap stores.
    pub stores: u64,
    /// Non-temporal stores.
    pub nt_stores: u64,
    /// Cache-line write-backs issued.
    pub clwbs: u64,
    /// Persist fences drained.
    pub fences: u64,
    /// Cache lines made persistent.
    pub lines_persisted: u64,
    /// Log payload bytes appended.
    pub log_bytes: u64,
}

impl Counters {
    /// CSV column names, matching [`Counters::csv_fields`] order.
    pub const CSV_HEADER: &'static str =
        "loads,stores,nt_stores,clwbs,fences,lines_persisted,log_bytes";

    /// Field-wise `self - earlier` (saturating).
    ///
    /// Persist counters are monotonic, so a regression (`earlier` above
    /// `self` in any field) means the caller composed snapshots from
    /// different buffers or out of order — a real accounting bug that a
    /// bare saturating subtraction masks as a zero delta. Use
    /// [`Counters::delta_since_counting`] on paths that must surface
    /// such bugs; this convenience form is for callers that have already
    /// validated monotonicity.
    pub fn delta_since(&self, earlier: &Counters) -> Counters {
        self.delta_since_counting(earlier).0
    }

    /// Field-wise `self - earlier`, counting clamped fields: returns the
    /// saturating delta plus the number of fields in which `earlier`
    /// exceeded `self` (0 = clean monotonic delta). Each clamped field
    /// is a masked counter regression — the metrics layer accumulates
    /// these into [`MetricsBuf::clamped_counter_deltas`] and surfaces
    /// them through [`ServiceMetrics::validate`].
    pub fn delta_since_counting(&self, earlier: &Counters) -> (Counters, u64) {
        let mut clamped = 0u64;
        let mut sub = |a: u64, b: u64| {
            if a < b {
                clamped += 1;
                0
            } else {
                a - b
            }
        };
        let delta = Counters {
            loads: sub(self.loads, earlier.loads),
            stores: sub(self.stores, earlier.stores),
            nt_stores: sub(self.nt_stores, earlier.nt_stores),
            clwbs: sub(self.clwbs, earlier.clwbs),
            fences: sub(self.fences, earlier.fences),
            lines_persisted: sub(self.lines_persisted, earlier.lines_persisted),
            log_bytes: sub(self.log_bytes, earlier.log_bytes),
        };
        (delta, clamped)
    }

    /// Field-wise accumulate.
    pub fn add(&mut self, other: &Counters) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.nt_stores += other.nt_stores;
        self.clwbs += other.clwbs;
        self.fences += other.fences;
        self.lines_persisted += other.lines_persisted;
        self.log_bytes += other.log_bytes;
    }

    /// Comma-joined fields in [`Counters::CSV_HEADER`] order.
    pub fn csv_fields(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.loads,
            self.stores,
            self.nt_stores,
            self.clwbs,
            self.fences,
            self.lines_persisted,
            self.log_bytes
        )
    }
}

/// One window of the timeline: everything that completed inside
/// `[i·window_ns, (i+1)·window_ns)` on the global simulated clock.
#[derive(Debug, Clone, Default)]
pub struct WindowCell {
    /// Operations completed in this window, by op kind.
    pub ops: [u64; OP_KINDS],
    /// Latency histogram of those operations (simulated ns).
    pub lat: Hist,
    /// Persist-counter deltas attributed to this window.
    pub counters: Counters,
    /// Recovery time spent inside this window, by phase
    /// (`[scan, resume, release, rebuild]`, simulated ns).
    pub recovery_ns: [u64; RECOVERY_PHASES],
}

impl WindowCell {
    /// Total operations completed in this window (the goodput numerator).
    pub fn goodput(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Folds `other` into `self`.
    pub fn merge(&mut self, other: &WindowCell) {
        for (a, b) in self.ops.iter_mut().zip(other.ops.iter()) {
            *a += *b;
        }
        self.lat.merge(&other.lat);
        self.counters.add(&other.counters);
        for (a, b) in self.recovery_ns.iter_mut().zip(other.recovery_ns.iter()) {
            *a += *b;
        }
    }
}

/// A per-thread metrics accumulator. All state is inline or preallocated;
/// recording an op span touches no allocator (growth of the window vector
/// happens only when the timeline outruns [`PREALLOC_WINDOWS`], and only
/// at a window-boundary crossing).
#[derive(Debug)]
pub struct MetricsBuf {
    thread: u16,
    window_ns: u64,
    base_ns: u64,
    /// The open op span: `(kind, global begin ts)`.
    open: Option<(usize, u64)>,
    /// Whole-run latency histograms by op kind.
    pub per_kind: [Hist; OP_KINDS],
    windows: Vec<WindowCell>,
    /// Counter snapshot at the last attribution point; the next op end
    /// attributes the delta since it to the current window.
    last: Counters,
    /// Spans lost to an `op_begin` arriving while another span was still
    /// open (the earlier begin is discarded). Non-zero means the
    /// instrumentation has unbalanced begin/end markers — every dropped
    /// span is an op missing from goodput and latency.
    pub dropped_spans: u64,
    /// Spans whose end timestamp was *before* their begin (clock went
    /// backwards); the latency was clamped to zero rather than recorded
    /// as a huge wrapped value. Always a harness bug — debug builds also
    /// assert on it.
    pub clamped_spans: u64,
    /// Counter-delta fields clamped to zero because the snapshot at an
    /// `op_end` was *below* the previous attribution point. Persist
    /// counters are monotonic within one buffer, so any clamp means
    /// snapshots from different buffers (or segments) were composed out
    /// of order — the per-window persist columns silently undercount.
    /// Used to vanish into `saturating_sub`; now counted and surfaced
    /// through [`ServiceMetrics::validate`]. Debug builds also assert.
    pub clamped_counter_deltas: u64,
}

impl MetricsBuf {
    /// A buffer for `thread` with the given window width and timeline
    /// base.
    pub fn new(thread: u16, window_ns: u64, base_ns: u64) -> Box<MetricsBuf> {
        let mut windows = Vec::new();
        windows.reserve_exact(PREALLOC_WINDOWS);
        Box::new(MetricsBuf {
            thread,
            window_ns: window_ns.max(1),
            base_ns,
            open: None,
            per_kind: Default::default(),
            windows,
            last: Counters::default(),
            dropped_spans: 0,
            clamped_spans: 0,
            clamped_counter_deltas: 0,
        })
    }

    /// The thread id this buffer records for.
    pub fn thread(&self) -> u16 {
        self.thread
    }

    /// Window width in simulated ns.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    #[inline]
    fn cell_at(&mut self, global_ts: u64) -> &mut WindowCell {
        let idx = (global_ts / self.window_ns) as usize;
        while self.windows.len() <= idx {
            self.windows.push(WindowCell::default());
        }
        &mut self.windows[idx]
    }

    /// Opens an op span of `kind` (clamped) at handle-local `ts_ns`.
    /// A begin arriving while another span is still open *replaces* it;
    /// the discarded span is counted in [`MetricsBuf::dropped_spans`]
    /// (it used to vanish silently, hiding unbalanced instrumentation).
    #[inline]
    pub fn op_begin(&mut self, kind: u64, ts_ns: u64) {
        let kind = (kind as usize).min(OP_KINDS - 1);
        if self.open.is_some() {
            self.dropped_spans += 1;
            debug_assert!(
                false,
                "op_begin(kind={kind}) with a span already open: \
                 unbalanced begin/end instrumentation"
            );
        }
        self.open = Some((kind, self.base_ns + ts_ns));
    }

    /// Closes the open op span at handle-local `ts_ns`, attributing the
    /// latency and the counter delta since the previous close to the
    /// window containing the (global) end timestamp. A close without an
    /// open span is ignored; the close's kind argument is ignored in
    /// favor of the open span's kind (mirroring the trace pairing). An
    /// end timestamp before the begin (the clock went backwards — always
    /// a harness bug) records zero latency and is counted in
    /// [`MetricsBuf::clamped_spans`]; debug builds assert on it.
    #[inline]
    pub fn op_end(&mut self, _kind: u64, ts_ns: u64, counters: &Counters) {
        let Some((kind, begin)) = self.open.take() else { return };
        let end = self.base_ns + ts_ns;
        if end < begin {
            self.clamped_spans += 1;
            debug_assert!(
                false,
                "op_end at {end} before its begin at {begin}: \
                 non-monotonic span timestamps"
            );
        }
        let lat = end.saturating_sub(begin);
        self.per_kind[kind].record(lat);
        let (delta, clamped) = counters.delta_since_counting(&self.last);
        if clamped > 0 {
            self.clamped_counter_deltas += clamped;
            debug_assert!(
                false,
                "persist counters regressed across an op span ({clamped} \
                 field(s) clamped): snapshots composed from different \
                 buffers or out of order"
            );
        }
        self.last = *counters;
        let cell = self.cell_at(end);
        cell.ops[kind] += 1;
        cell.lat.record(lat);
        cell.counters.add(&delta);
    }

    /// Attributes the recovery span `[t0, t1)` (global timeline ns) of
    /// `phase` to every window it overlaps, split exactly.
    pub fn recovery_span(&mut self, phase: RecoveryPhase, t0: u64, t1: u64) {
        let pi = phase as usize - 1;
        let w = self.window_ns;
        let mut cur = t0;
        while cur < t1 {
            let next = (cur / w + 1) * w;
            let end = next.min(t1);
            self.cell_at(cur).recovery_ns[pi] += end - cur;
            cur = end;
        }
    }

    /// The global-timeline offset this buffer applies.
    pub fn base_ns(&self) -> u64 {
        self.base_ns
    }
}

/// The emission handle a `PmemHandle` carries. Disabled metrics is
/// `MetricsHandle(None)`: one predictable untaken branch per marker,
/// no allocation — identical shape to `TraceHandle`.
#[derive(Debug, Default)]
pub struct MetricsHandle(Option<Box<MetricsBuf>>);

impl MetricsHandle {
    /// The disabled handle (`const`-foldable).
    pub const OFF: MetricsHandle = MetricsHandle(None);

    /// A handle recording into `buf`.
    pub fn new(buf: Box<MetricsBuf>) -> MetricsHandle {
        MetricsHandle(Some(buf))
    }

    /// True when op spans are being recorded.
    #[inline(always)]
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Direct access to the buffer, when on.
    #[inline(always)]
    pub fn as_buf_mut(&mut self) -> Option<&mut MetricsBuf> {
        self.0.as_deref_mut()
    }

    /// Takes the buffer out (for folding into a pool-level collector).
    pub fn take(&mut self) -> Option<Box<MetricsBuf>> {
        self.0.take()
    }
}

/// The merged, deterministic windowed view of a service run: the
/// cell-wise sum of every folded per-thread buffer (and, via
/// [`ServiceMetrics::merge`], of every shard).
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    /// Window width in simulated ns.
    pub window_ns: u64,
    /// The windowed timeline, index = global ts / `window_ns`.
    pub windows: Vec<WindowCell>,
    /// Whole-run latency histograms by op kind.
    pub per_kind: [Hist; OP_KINDS],
    /// Global timestamps at which a pool crashed, in note order.
    pub crashes: Vec<u64>,
    /// Total spans discarded by an overlapping `op_begin`, summed over
    /// every folded buffer (see [`MetricsBuf::dropped_spans`]).
    pub dropped_spans: u64,
    /// Total spans with a non-monotonic end timestamp, summed over every
    /// folded buffer (see [`MetricsBuf::clamped_spans`]).
    pub clamped_spans: u64,
    /// Total counter-delta fields clamped by a regressed snapshot,
    /// summed over every folded buffer (see
    /// [`MetricsBuf::clamped_counter_deltas`]).
    pub clamped_counter_deltas: u64,
}

impl ServiceMetrics {
    /// CSV header matching [`ServiceMetrics::csv_rows`].
    pub const CSV_HEADER: &'static str = "window,start_ns,goodput,generic,gets,puts,p50_ns,p90_ns,p99_ns,p999_ns,loads,stores,nt_stores,clwbs,fences,lines_persisted,log_bytes,scan_ns,resume_ns,release_ns,rebuild_ns";

    /// Merges folded buffers into one deterministic timeline. Buffers are
    /// ordered by thread id first, so the result is independent of fold
    /// (handle drop) order; all cell contents are order-independent sums.
    pub fn from_bufs(window_ns: u64, mut bufs: Vec<Box<MetricsBuf>>) -> ServiceMetrics {
        bufs.sort_by_key(|b| b.thread());
        let mut m = ServiceMetrics { window_ns: window_ns.max(1), ..ServiceMetrics::default() };
        for b in &bufs {
            if m.windows.len() < b.windows.len() {
                m.windows.resize(b.windows.len(), WindowCell::default());
            }
            for (cell, other) in m.windows.iter_mut().zip(b.windows.iter()) {
                cell.merge(other);
            }
            for (h, o) in m.per_kind.iter_mut().zip(b.per_kind.iter()) {
                h.merge(o);
            }
            m.dropped_spans += b.dropped_spans;
            m.clamped_spans += b.clamped_spans;
            m.clamped_counter_deltas += b.clamped_counter_deltas;
        }
        m
    }

    /// Validates the span accounting: returns one human-readable finding
    /// per anomaly (empty = every op span was recorded exactly once with
    /// a well-formed latency). The service harness asserts this is empty
    /// at the end of a run; dashboards can surface it as a health check.
    pub fn validate(&self) -> Vec<String> {
        let mut findings = Vec::new();
        if self.dropped_spans > 0 {
            findings.push(format!(
                "{} op span(s) dropped by overlapping op_begin markers: \
                 goodput and latency undercount by that many ops",
                self.dropped_spans
            ));
        }
        if self.clamped_spans > 0 {
            findings.push(format!(
                "{} op span(s) had a non-monotonic end timestamp \
                 (latency clamped to zero)",
                self.clamped_spans
            ));
        }
        if self.clamped_counter_deltas > 0 {
            findings.push(format!(
                "{} persist-counter delta field(s) clamped to zero by a \
                 regressed snapshot: per-window persist columns \
                 undercount (buffer composition out of order)",
                self.clamped_counter_deltas
            ));
        }
        findings
    }

    /// Folds another timeline (e.g. a different shard of the same
    /// service) into `self`, cell-wise. Window widths must match.
    pub fn merge(&mut self, other: &ServiceMetrics) {
        assert_eq!(self.window_ns, other.window_ns, "window widths must match to merge");
        if self.windows.len() < other.windows.len() {
            self.windows.resize(other.windows.len(), WindowCell::default());
        }
        for (cell, o) in self.windows.iter_mut().zip(other.windows.iter()) {
            cell.merge(o);
        }
        for (h, o) in self.per_kind.iter_mut().zip(other.per_kind.iter()) {
            h.merge(o);
        }
        self.crashes.extend_from_slice(&other.crashes);
        self.dropped_spans += other.dropped_spans;
        self.clamped_spans += other.clamped_spans;
        self.clamped_counter_deltas += other.clamped_counter_deltas;
    }

    /// Records that a pool crashed at global timestamp `ts`.
    pub fn note_crash(&mut self, ts: u64) {
        self.crashes.push(ts);
    }

    /// Total operations completed across the whole timeline.
    pub fn total_ops(&self) -> u64 {
        self.windows.iter().map(WindowCell::goodput).sum()
    }

    /// Recovery-phase totals summed over all windows
    /// (`[scan, resume, release, rebuild]`, simulated ns).
    pub fn recovery_phase_totals(&self) -> [u64; RECOVERY_PHASES] {
        let mut out = [0u64; RECOVERY_PHASES];
        for w in &self.windows {
            for (t, v) in out.iter_mut().zip(w.recovery_ns.iter()) {
                *t += v;
            }
        }
        out
    }

    /// One CSV row per window, in [`ServiceMetrics::CSV_HEADER`] order.
    pub fn csv_rows(&self) -> Vec<String> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| {
                format!(
                    "{i},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
                    i as u64 * self.window_ns,
                    w.goodput(),
                    w.ops[0],
                    w.ops[1],
                    w.ops[2],
                    w.lat.value_at_quantile(0.50),
                    w.lat.value_at_quantile(0.90),
                    w.lat.value_at_quantile(0.99),
                    w.lat.value_at_quantile(0.999),
                    w.counters.csv_fields(),
                    w.recovery_ns[0],
                    w.recovery_ns[1],
                    w.recovery_ns[2],
                    w.recovery_ns[3],
                )
            })
            .collect()
    }

    /// A Prometheus text-exposition snapshot of the whole run. `labels`
    /// is spliced into every sample (e.g. `scheme="ido"`), empty for
    /// none. Deterministic: fixed metric order, integer values only.
    pub fn prometheus_text(&self, labels: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let lbl = |extra: &str| -> String {
            match (labels.is_empty(), extra.is_empty()) {
                (true, true) => String::new(),
                (true, false) => format!("{{{extra}}}"),
                (false, true) => format!("{{{labels}}}"),
                (false, false) => format!("{{{labels},{extra}}}"),
            }
        };
        out.push_str("# TYPE ido_ops_total counter\n");
        for (k, name) in OP_KIND_NAMES.iter().enumerate() {
            let total: u64 = self.windows.iter().map(|w| w.ops[k]).sum();
            let _ = writeln!(out, "ido_ops_total{} {total}", lbl(&format!("kind=\"{name}\"")));
        }
        out.push_str("# TYPE ido_op_latency_ns summary\n");
        for (k, name) in OP_KIND_NAMES.iter().enumerate() {
            let h = &self.per_kind[k];
            for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
                let _ = writeln!(
                    out,
                    "ido_op_latency_ns{} {}",
                    lbl(&format!("kind=\"{name}\",quantile=\"{qs}\"")),
                    h.value_at_quantile(q)
                );
            }
            let _ = writeln!(out, "ido_op_latency_ns_sum{} {}", lbl(&format!("kind=\"{name}\"")), h.sum());
            let _ = writeln!(out, "ido_op_latency_ns_count{} {}", lbl(&format!("kind=\"{name}\"")), h.count());
        }
        out.push_str("# TYPE ido_recovery_ns_total counter\n");
        let totals = self.recovery_phase_totals();
        for (p, total) in RecoveryPhase::ALL.iter().zip(totals.iter()) {
            let _ = writeln!(
                out,
                "ido_recovery_ns_total{} {total}",
                lbl(&format!("phase=\"{}\"", p.name()))
            );
        }
        out.push_str("# TYPE ido_crashes_total counter\n");
        let _ = writeln!(out, "ido_crashes_total{} {}", lbl(""), self.crashes.len());
        out
    }

    /// Emits the windowed series as Perfetto counter tracks under
    /// process `pid`: one goodput track (per-kind sub-series), one
    /// latency-quantile track, and one recovery-progress track (ns of
    /// recovery work per window, by phase — the series that shows a
    /// shard coming back).
    pub fn add_counter_tracks(&self, chrome: &mut ChromeTrace, pid: u32) {
        for (i, w) in self.windows.iter().enumerate() {
            let ts = i as u64 * self.window_ns;
            chrome.add_counter(
                pid,
                "goodput (ops/window)",
                ts,
                &[("generic", w.ops[0]), ("get", w.ops[1]), ("put", w.ops[2])],
            );
            chrome.add_counter(
                pid,
                "op latency (ns)",
                ts,
                &[
                    ("p50", w.lat.value_at_quantile(0.50)),
                    ("p99", w.lat.value_at_quantile(0.99)),
                    ("p999", w.lat.value_at_quantile(0.999)),
                ],
            );
            chrome.add_counter(
                pid,
                "recovery (ns/window)",
                ts,
                &[
                    ("scan", w.recovery_ns[0]),
                    ("resume", w.recovery_ns[1]),
                    ("release", w.recovery_ns[2]),
                    ("rebuild", w.recovery_ns[3]),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(stores: u64, clwbs: u64) -> Counters {
        Counters { stores, clwbs, ..Counters::default() }
    }

    #[test]
    fn config_default_is_disabled() {
        let c = MetricsConfig::default();
        assert!(!c.enabled);
        assert_eq!(c.window_ns, DEFAULT_WINDOW_NS);
        assert!(MetricsConfig::on().enabled);
        assert_eq!(MetricsConfig::with_window(500).at_base(77).base_ns, 77);
    }

    #[test]
    fn op_span_lands_in_the_end_window_with_latency_and_delta() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(1, 950);
        b.op_end(1, 1100, &counters(5, 2));
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.windows.len(), 2);
        assert_eq!(m.windows[0].goodput(), 0);
        assert_eq!(m.windows[1].ops, [0, 1, 0]);
        assert_eq!(m.windows[1].lat.max(), 150);
        assert_eq!(m.windows[1].counters.stores, 5);
        assert_eq!(m.windows[1].counters.clwbs, 2);
        assert_eq!(m.per_kind[1].count(), 1);
    }

    #[test]
    fn counter_deltas_are_attributed_incrementally() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(2, 0);
        b.op_end(2, 10, &counters(5, 0));
        b.op_begin(2, 1500);
        b.op_end(2, 1600, &counters(12, 3));
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.windows[0].counters.stores, 5);
        assert_eq!(m.windows[1].counters.stores, 7, "delta since previous close");
        assert_eq!(m.windows[1].counters.clwbs, 3);
    }

    #[test]
    fn base_offset_shifts_the_timeline() {
        let mut b = MetricsBuf::new(0, 1000, 5000);
        b.op_begin(0, 10);
        b.op_end(0, 20, &Counters::default());
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.windows.len(), 6);
        assert_eq!(m.windows[5].ops[0], 1);
    }

    #[test]
    fn unmatched_end_is_ignored_and_kind_clamps() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_end(1, 10, &Counters::default());
        b.op_begin(99, 20);
        b.op_end(99, 30, &Counters::default());
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.total_ops(), 1);
        assert_eq!(m.windows[0].ops[OP_KINDS - 1], 1, "kind clamped to the last index");
    }

    #[test]
    fn overlapping_begin_is_counted_not_silent() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(1, 10);
        // Second begin while the first span is still open: debug builds
        // assert; the span loss is counted either way.
        let overlap = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.op_begin(2, 20);
        }));
        assert_eq!(overlap.is_err(), cfg!(debug_assertions));
        assert_eq!(b.dropped_spans, 1, "the discarded span must be counted");
        b.op_end(2, 30, &Counters::default());
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.dropped_spans, 1);
        assert_eq!(m.total_ops(), 1, "only the surviving span lands");
        let findings = m.validate();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("dropped"), "{findings:?}");
    }

    #[test]
    fn non_monotonic_end_is_clamped_and_counted() {
        let mut b = MetricsBuf::new(0, 1000, 500);
        b.op_begin(0, 100); // global begin = 600
        // End with a handle-local timestamp that lands *before* the
        // begin on the global timeline.
        let backwards = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.op_end(0, 50, &Counters::default());
        }));
        assert_eq!(backwards.is_err(), cfg!(debug_assertions));
        assert_eq!(b.clamped_spans, 1, "the clamp must be counted");
        if !cfg!(debug_assertions) {
            // Release builds record the span with zero latency.
            assert_eq!(b.per_kind[0].count(), 1);
            assert_eq!(b.per_kind[0].max(), 0);
        }
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.clamped_spans, 1);
        assert!(m.validate().iter().any(|f| f.contains("non-monotonic")), "{:?}", m.validate());
    }

    #[test]
    fn regressed_counter_snapshot_is_clamped_and_counted() {
        // Direct delta: a regression in two fields clamps those fields
        // to zero and reports exactly two clamp events.
        let earlier = counters(10, 4);
        let later = counters(7, 2); // stores and clwbs both went backwards
        let (delta, clamped) = later.delta_since_counting(&earlier);
        assert_eq!(clamped, 2, "one clamp event per regressed field");
        assert_eq!(delta.stores, 0);
        assert_eq!(delta.clwbs, 0);
        // The convenience form still saturates (same delta, count hidden).
        assert_eq!(later.delta_since(&earlier), delta);
        // A monotonic pair is clean.
        assert_eq!(earlier.delta_since_counting(&later), (counters(3, 2), 0));

        // Through the buffer: an op span whose end snapshot regresses
        // asserts in debug builds and is counted either way.
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(0, 0);
        b.op_end(0, 10, &counters(10, 4));
        b.op_begin(0, 20);
        let regress = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.op_end(0, 30, &counters(7, 2));
        }));
        assert_eq!(regress.is_err(), cfg!(debug_assertions));
        assert_eq!(b.clamped_counter_deltas, 2, "the masked regression must be counted");
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.clamped_counter_deltas, 2);
        let findings = m.validate();
        assert!(
            findings.iter().any(|f| f.contains("persist-counter delta")),
            "{findings:?}"
        );

        // Merge sums the accounting across shards.
        let mut other = ServiceMetrics::from_bufs(1000, Vec::new());
        other.clamped_counter_deltas = 3;
        let mut total = ServiceMetrics::from_bufs(1000, Vec::new());
        total.merge(&m);
        total.merge(&other);
        assert_eq!(total.clamped_counter_deltas, 5);
    }

    #[test]
    fn clean_run_validates_empty_and_merge_sums_accounting() {
        let mut a = MetricsBuf::new(0, 1000, 0);
        a.op_begin(1, 0);
        a.op_end(1, 10, &Counters::default());
        let ma = ServiceMetrics::from_bufs(1000, vec![a]);
        assert!(ma.validate().is_empty());

        let mut x = ServiceMetrics::from_bufs(1000, Vec::new());
        x.dropped_spans = 2;
        x.clamped_spans = 1;
        let mut y = ServiceMetrics::from_bufs(1000, Vec::new());
        y.dropped_spans = 3;
        y.merge(&x);
        assert_eq!(y.dropped_spans, 5);
        assert_eq!(y.clamped_spans, 1);
    }

    #[test]
    fn recovery_span_splits_exactly_across_windows() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.recovery_span(RecoveryPhase::Scan, 500, 2500);
        b.recovery_span(RecoveryPhase::Rebuild, 2500, 2600);
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        assert_eq!(m.windows[0].recovery_ns[0], 500);
        assert_eq!(m.windows[1].recovery_ns[0], 1000);
        assert_eq!(m.windows[2].recovery_ns[0], 500);
        assert_eq!(m.windows[2].recovery_ns[3], 100);
        assert_eq!(m.recovery_phase_totals(), [2000, 0, 0, 100]);
    }

    #[test]
    fn merge_is_fold_order_independent() {
        let mk = |thread: u16, ts: u64| {
            let mut b = MetricsBuf::new(thread, 1000, 0);
            b.op_begin(1, ts);
            b.op_end(1, ts + 50, &Counters::default());
            b
        };
        let a = ServiceMetrics::from_bufs(1000, vec![mk(0, 100), mk(1, 2100)]);
        let b = ServiceMetrics::from_bufs(1000, vec![mk(1, 2100), mk(0, 100)]);
        assert_eq!(a.csv_rows(), b.csv_rows());
        assert_eq!(a.total_ops(), 2);
    }

    #[test]
    fn shard_merge_sums_cells_and_keeps_crashes() {
        let mk = |ts: u64| {
            let mut b = MetricsBuf::new(0, 1000, 0);
            b.op_begin(2, ts);
            b.op_end(2, ts + 10, &counters(1, 1));
            ServiceMetrics::from_bufs(1000, vec![b])
        };
        let mut a = mk(100);
        a.note_crash(700);
        let b = mk(150);
        a.merge(&b);
        assert_eq!(a.windows[0].ops[2], 2);
        assert_eq!(a.windows[0].counters.stores, 2);
        assert_eq!(a.crashes, vec![700]);
    }

    #[test]
    fn csv_rows_match_header_arity() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(1, 10);
        b.op_end(1, 20, &counters(3, 1));
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        let cols = ServiceMetrics::CSV_HEADER.split(',').count();
        for row in m.csv_rows() {
            assert_eq!(row.split(',').count(), cols, "row {row}");
        }
    }

    #[test]
    fn prometheus_snapshot_has_all_families() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(1, 0);
        b.op_end(1, 40, &Counters::default());
        b.recovery_span(RecoveryPhase::Resume, 0, 300);
        let mut m = ServiceMetrics::from_bufs(1000, vec![b]);
        m.note_crash(123);
        let text = m.prometheus_text("scheme=\"ido\"");
        assert!(text.contains("ido_ops_total{scheme=\"ido\",kind=\"get\"} 1"));
        assert!(text.contains("ido_op_latency_ns{scheme=\"ido\",kind=\"get\",quantile=\"0.99\"} 40"));
        assert!(text.contains("ido_recovery_ns_total{scheme=\"ido\",phase=\"resume\"} 300"));
        assert!(text.contains("ido_crashes_total{scheme=\"ido\"} 1"));
        // Unlabeled form still renders valid sample lines.
        let plain = m.prometheus_text("");
        assert!(plain.contains("ido_crashes_total 1"));
    }

    #[test]
    fn counter_tracks_render_into_chrome_export() {
        let mut b = MetricsBuf::new(0, 1000, 0);
        b.op_begin(2, 100);
        b.op_end(2, 350, &Counters::default());
        b.recovery_span(RecoveryPhase::Scan, 1000, 1400);
        let m = ServiceMetrics::from_bufs(1000, vec![b]);
        let mut c = ChromeTrace::new();
        c.add_process(1, "svc");
        m.add_counter_tracks(&mut c, 1);
        let s = c.finish();
        ido_trace::json::validate_json(&s).expect("counter export is valid JSON");
        assert!(s.contains("goodput (ops/window)"));
        assert!(s.contains("\"p999\":250"));
        assert!(s.contains("\"scan\":400"));
    }

    #[test]
    fn handle_off_is_inert_and_on_records() {
        let mut h = MetricsHandle::OFF;
        assert!(!h.is_on());
        assert!(h.as_buf_mut().is_none());
        assert!(h.take().is_none());
        let mut h = MetricsHandle::new(MetricsBuf::new(3, 1000, 0));
        assert!(h.is_on());
        if let Some(b) = h.as_buf_mut() {
            b.op_begin(0, 1);
            b.op_end(0, 2, &Counters::default());
        }
        let buf = h.take().expect("buffer present");
        assert_eq!(buf.thread(), 3);
        assert!(!h.is_on(), "taken handle is off");
    }
}
