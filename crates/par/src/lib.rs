//! Deterministic ordered parallel map.
//!
//! The figure sweeps (`ido-bench`) and the crash oracle (`ido-crashtest`)
//! are embarrassingly parallel: every (scheme × thread-count) point and
//! every per-boundary crash-state check is a **pure function** of its
//! inputs — each one builds its own `Vm` over its own `PmemPool`, so no
//! simulated state is shared between tasks. What *is* load-bearing is
//! determinism: serial and parallel runs must produce byte-identical
//! tables, CSVs, and counterexamples (DESIGN.md §4.4, §7.3).
//!
//! [`par_map`] therefore guarantees **input-order results**: it fans tasks
//! out over `std::thread::scope` workers (no external dependencies — the
//! container has no registry access, and determinism must not hinge on a
//! third-party scheduler) and collects result `i` into slot `i` regardless
//! of completion order. The worker count comes from the `IDO_JOBS`
//! environment variable, defaulting to [`std::thread::available_parallelism`];
//! `IDO_JOBS=1` degenerates to a plain serial map on the calling thread.
//! Because tasks are pure, the *only* observable difference between job
//! counts is wall-clock time.
//!
//! Panic propagation matches the serial loop closely enough for the crash
//! oracle: a panicking task poisons the scope join and re-raises on the
//! caller, so a genuinely failing sweep still fails loudly.

#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for [`par_map`]: the `IDO_JOBS` environment variable if set
/// to a positive integer, otherwise [`std::thread::available_parallelism`]
/// (1 if even that is unavailable).
pub fn jobs() -> usize {
    match std::env::var("IDO_JOBS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Maps `f` over `items` with up to [`jobs()`] worker threads, returning
/// results **in input order**. See the crate docs for the determinism
/// contract. Equivalent to `items.into_iter().map(f).collect()` for any
/// pure `f`.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    par_map_jobs(jobs(), items, f)
}

/// [`par_map`] with an explicit worker count (used by the determinism tests
/// to compare `jobs = 1` against `jobs = N` without racing on the process
/// environment).
pub fn par_map_jobs<I, T, F>(jobs: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    let workers = jobs.min(n).max(1);
    if workers == 1 {
        return items.into_iter().map(f).collect();
    }

    // Task queue: each worker claims the next unclaimed index; each input is
    // taken exactly once. Results carry their input index so completion
    // order cannot influence output order.
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(n));
    let f = &f;

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let item = slots[i].lock().expect("task slot").take().expect("taken once");
                let r = f(item);
                done.lock().expect("result sink").push((i, r));
            });
        }
    });

    let mut out = done.into_inner().expect("all workers joined");
    debug_assert_eq!(out.len(), n);
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_job_count() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 4, 7, 64] {
            let got = par_map_jobs(jobs, items.clone(), |x| {
                // Stagger completion order: later items finish first.
                if x < 8 {
                    std::thread::sleep(std::time::Duration::from_millis(8 - x));
                }
                x * x
            });
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn each_item_is_consumed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let r = par_map_jobs(4, (0..1000).collect(), |x: u64| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(r.len(), 1000);
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = par_map_jobs(8, Vec::<u32>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(par_map_jobs(8, vec![41u32], |x| x + 1), vec![42]);
    }

    #[test]
    fn jobs_parses_like_the_sweep_engine_expects() {
        // jobs() must always be >= 1 whatever the environment says.
        assert!(jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            par_map_jobs(4, (0..16).collect(), |x: u32| {
                assert!(x != 7, "injected");
                x
            })
        });
        assert!(r.is_err(), "a panicking task must fail the map");
    }
}
