//! Alias-precision ablation modes behave as specified.

use ido_idem::{analyze_with, AliasMode};
use ido_ir::{Operand, ProgramBuilder};

fn prog(build: impl FnOnce(&mut ido_ir::FunctionBuilder<'_>)) -> ido_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("t", 2);
    build(&mut f);
    f.finish().unwrap();
    pb.finish()
}

#[test]
fn none_mode_cuts_disjoint_offsets() {
    let p = prog(|f| {
        let p = f.param(0);
        let a = f.new_reg();
        f.load(a, p, 0);
        f.store(p, 8, 5i64); // provably disjoint word
        f.ret(None);
    });
    let func = p.function(ido_ir::FuncId(0));
    assert_eq!(analyze_with(func, AliasMode::Basic).regions().len(), 1);
    assert_eq!(analyze_with(func, AliasMode::None).regions().len(), 2);
}

#[test]
fn precise_mode_ignores_different_bases() {
    let p = prog(|f| {
        let p0 = f.param(0);
        let p1 = f.param(1);
        let a = f.new_reg();
        f.load(a, p0, 0);
        f.store(p1, 0, 5i64); // basicAA: may alias; oracle: disjoint
        f.ret(None);
    });
    let func = p.function(ido_ir::FuncId(0));
    assert_eq!(analyze_with(func, AliasMode::Basic).regions().len(), 2);
    assert_eq!(analyze_with(func, AliasMode::Precise).regions().len(), 1);
}

#[test]
fn precise_mode_still_cuts_true_antidependences() {
    let p = prog(|f| {
        let p0 = f.param(0);
        let a = f.new_reg();
        f.load(a, p0, 0);
        f.store(p0, 0, Operand::Reg(a)); // same word: a real WAR
        f.ret(None);
    });
    let func = p.function(ido_ir::FuncId(0));
    assert_eq!(analyze_with(func, AliasMode::Precise).regions().len(), 2);
}

#[test]
fn precision_ordering_none_below_basic_below_precise() {
    // Region count must be monotone in precision.
    let p = prog(|f| {
        let p0 = f.param(0);
        let p1 = f.param(1);
        let a = f.new_reg();
        let b = f.new_reg();
        f.load(a, p0, 0);
        f.store(p0, 8, 1i64); // none cuts; basic/oracle don't
        f.load(b, p1, 0);
        f.store(p0, 16, 2i64); // none+basic cut (different bases); oracle doesn't
        f.ret(None);
    });
    let func = p.function(ido_ir::FuncId(0));
    let none = analyze_with(func, AliasMode::None).regions().len();
    let basic = analyze_with(func, AliasMode::Basic).regions().len();
    let precise = analyze_with(func, AliasMode::Precise).regions().len();
    assert!(none >= basic, "none={none} basic={basic}");
    assert!(basic >= precise, "basic={basic} precise={precise}");
    assert!(none > precise);
}
