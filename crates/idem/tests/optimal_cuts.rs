//! The online partitioner's antidependence cuts are *optimal* on
//! straight-line code: its cut count equals the minimum interval-stabbing
//! number of the program's antidependence intervals.

use ido_idem::antidep::all_intra_block_pairs;
use ido_idem::hitting::{min_stabbing, CutInterval};
use ido_idem::analyze;
use ido_ir::{Operand, ProgramBuilder};
use proptest::prelude::*;

/// Builds a single-block program from (is_store, param, offset) triples.
fn straight_line(ops: &[(bool, u8, u8)]) -> ido_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("t", 3);
    let params = [f.param(0), f.param(1), f.param(2)];
    for &(is_store, p, off) in ops {
        let base = params[p as usize % 3];
        let offset = (off as i64 % 4) * 8;
        if is_store {
            f.store(base, offset, Operand::Imm(1));
        } else {
            let d = f.new_reg();
            f.load(d, base, offset);
        }
    }
    f.ret(None);
    f.finish().unwrap();
    pb.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn partitioner_cut_count_is_optimal(
        ops in prop::collection::vec((prop::bool::ANY, 0u8..3, 0u8..4), 1..10)
    ) {
        let prog = straight_line(&ops);
        let func = prog.function(ido_ir::FuncId(0));
        // The partitioner's antidependence cuts = regions beyond the entry.
        let analysis = analyze(func);
        let partitioner_cuts = analysis.cuts().len() - 1; // minus the entry cut
        // The optimal count from the interval-stabbing formulation of the
        // same pairs.
        let pairs = all_intra_block_pairs(func);
        let intervals: Vec<CutInterval> = pairs
            .iter()
            .map(|p| CutInterval { load: p.load.1, store: p.store.1 })
            .collect();
        let optimal = min_stabbing(&intervals).len();
        prop_assert_eq!(
            partitioner_cuts, optimal,
            "partitioner used {} cuts, optimum is {}", partitioner_cuts, optimal
        );
    }
}
