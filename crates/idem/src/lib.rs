//! Idempotent region partitioning — the analysis at the heart of iDO.
//!
//! An *idempotent region* is a single-entry, possibly multi-exit subgraph of
//! the CFG that can be re-executed from its entry at any point during its
//! execution without changing its final output. Re-executability requires
//! that the region's **inputs** — variables live into the region and used
//! there — are never overwritten before the region completes (no
//! *antidependence* on inputs).
//!
//! Following De Kruijf et al. (PLDI 2012), whose scheme the iDO paper adopts
//! (Section IV-A-b), this crate partitions each function by placing **cuts**
//! (region boundaries) so that:
//!
//! * every *memory antidependence* — a load followed by a possibly-aliasing
//!   store — is separated by a cut. Cut positions are chosen by the
//!   right-endpoint greedy rule (cut immediately before the first violating
//!   store), which is the optimal solution to the interval-stabbing
//!   formulation of the paper's "hitting set" step; the [`antidep`] module
//!   enumerates the pairs so tests can verify every pair is cut;
//! * structural events that must delimit regions are cuts: function entry,
//!   each lock acquire (boundary *after* it) and release (boundary *before*
//!   it), programmer durable-region markers, and calls and allocator
//!   operations (runtime calls with external side effects). Loop back edges
//!   are deliberately **not** cut: a read-only traversal loop is idempotent
//!   as a whole (restarting re-traverses from scratch — why the paper's
//!   Redis read paths are nearly free), while loop-carried antidependences
//!   are found by the cross-block fixpoint, which propagates around back
//!   edges;
//! * every region is **single-entry**: a join whose predecessors lie in
//!   different regions starts a fresh region.
//!
//! Register antidependences are not cut; they are *repaired*, mirroring the
//! paper's live-interval extension. iDO logs each register into a fixed
//! per-register slot of the persistent `intRF`/`floatRF`; if a region both
//! consumed register `r` as an input and logged a new value into slot `r`,
//! a crash inside the region could restore the new value and re-execute
//! incorrectly. The paper prevents the register allocator from ever reusing
//! an input's register within a region; our virtual-register equivalent is
//! [`regions::partition`]'s WAR fixup: a definition of an input register `r`
//! is renamed to a fresh register `r'`, a region boundary is inserted
//! immediately after it, and the successor region begins with `mov r, r'`.
//! The old region then has `r` purely as an input and `r'` purely as an
//! output (distinct log slots); the new region defines `r` before any use.
//! This is exactly the split the paper's allocator-level mechanism induces
//! at machine level.
//!
//! # Example
//!
//! ```
//! use ido_ir::{ProgramBuilder, BinOp, Operand};
//! use ido_idem::partition;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.new_function("inc_cell", 1);
//! let p = f.param(0);
//! let v = f.new_reg();
//! f.load(v, p, 0);                 // v = mem[p]
//! f.bin(BinOp::Add, v, v, 1i64);   // v = v + 1   (register WAR on input v)
//! f.store(p, 0, Operand::Reg(v));  // mem[p] = v  (memory WAR on mem[p])
//! f.ret(None);
//! let id = f.finish().unwrap();
//! let mut prog = pb.finish();
//! let analysis = partition(prog.function_mut(id));
//! // The load/store antidependence and the register WAR both forced cuts.
//! assert!(analysis.regions().len() >= 2);
//! ```

#![deny(missing_docs)]

pub mod antidep;
pub mod hitting;
pub mod regions;
pub mod stats;

pub use regions::{analyze, analyze_with, partition, AliasMode, Pos, Region, RegionAnalysis, RegionId};
pub use stats::{RegionStats, StaticRegionSummary};
