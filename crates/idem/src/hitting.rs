//! The cut-selection core: minimum interval stabbing.
//!
//! De Kruijf et al. phrase cut placement as a *hitting set* problem: every
//! antidependent (load, store) pair defines an interval of legal cut
//! positions — after the load, at or before the store — and the compiler
//! must choose a minimum set of positions hitting every interval. On a
//! straight line (one basic block) the intervals are one-dimensional and
//! the problem is the classic **interval point cover**, solved optimally by
//! the greedy right-endpoint rule. The region partitioner in
//! [`crate::regions`] applies exactly that rule online (cut immediately
//! before the first violating store, which resets the outstanding-load
//! set); this module provides the offline algorithm plus the optimality
//! guarantee, and the test suite proves the two agree.

/// A half-open interval `(after, at_or_before]` of legal cut positions for
/// one antidependence: the cut must fall strictly after the load's
/// position and at or before the store's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CutInterval {
    /// Position of the load (exclusive lower bound for the cut).
    pub load: usize,
    /// Position of the store (inclusive upper bound for the cut).
    pub store: usize,
}

impl CutInterval {
    /// True if a cut placed immediately before position `p` separates the
    /// pair, i.e. `load < p <= store`.
    pub fn hit_by(&self, p: usize) -> bool {
        self.load < p && p <= self.store
    }
}

/// Computes a minimum set of cut positions hitting every interval, by the
/// greedy right-endpoint rule (optimal for 1-D intervals: any solution
/// must stab the earliest-ending interval somewhere ≤ its end, and
/// choosing exactly its end dominates every alternative).
///
/// Returns positions in ascending order. Intervals with `load >= store`
/// are impossible to cut (the "store" is the load itself) and are ignored.
pub fn min_stabbing(intervals: &[CutInterval]) -> Vec<usize> {
    let mut iv: Vec<CutInterval> =
        intervals.iter().copied().filter(|i| i.load < i.store).collect();
    iv.sort_by_key(|i| i.store);
    let mut cuts = Vec::new();
    let mut last: Option<usize> = None;
    for i in iv {
        if let Some(p) = last {
            if i.hit_by(p) {
                continue;
            }
        }
        cuts.push(i.store);
        last = Some(i.store);
    }
    cuts
}

/// True if `cuts` hits every (cuttable) interval.
pub fn covers(intervals: &[CutInterval], cuts: &[usize]) -> bool {
    intervals
        .iter()
        .filter(|i| i.load < i.store)
        .all(|i| cuts.iter().any(|&p| i.hit_by(p)))
}

/// Exhaustive minimum hitting-set size, for optimality testing only
/// (exponential; keep inputs small).
pub fn brute_force_min(intervals: &[CutInterval], max_pos: usize) -> usize {
    let positions: Vec<usize> = (1..=max_pos).collect();
    for k in 0..=positions.len() {
        if subsets_of_size(&positions, k).any(|s| covers(intervals, &s)) {
            return k;
        }
    }
    positions.len()
}

fn subsets_of_size(items: &[usize], k: usize) -> impl Iterator<Item = Vec<usize>> + '_ {
    let n = items.len();
    (0u64..(1 << n)).filter_map(move |mask| {
        if mask.count_ones() as usize != k {
            return None;
        }
        Some(
            (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| items[i])
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_interval_cut_at_store() {
        let iv = [CutInterval { load: 0, store: 3 }];
        let cuts = min_stabbing(&iv);
        assert_eq!(cuts, vec![3]);
        assert!(covers(&iv, &cuts));
    }

    #[test]
    fn nested_intervals_share_one_cut() {
        // load0..store5 contains load2..store3: one cut at 3 hits both.
        let iv = [
            CutInterval { load: 0, store: 5 },
            CutInterval { load: 2, store: 3 },
        ];
        assert_eq!(min_stabbing(&iv), vec![3]);
    }

    #[test]
    fn disjoint_intervals_need_one_cut_each() {
        let iv = [
            CutInterval { load: 0, store: 2 },
            CutInterval { load: 4, store: 6 },
            CutInterval { load: 8, store: 9 },
        ];
        let cuts = min_stabbing(&iv);
        assert_eq!(cuts, vec![2, 6, 9]);
    }

    #[test]
    fn chained_overlaps_covered_greedily() {
        // (0,3], (2,5], (4,7]: cuts at 3 and 7 suffice.
        let iv = [
            CutInterval { load: 0, store: 3 },
            CutInterval { load: 2, store: 5 },
            CutInterval { load: 4, store: 7 },
        ];
        let cuts = min_stabbing(&iv);
        assert_eq!(cuts.len(), 2);
        assert!(covers(&iv, &cuts));
    }

    #[test]
    fn uncuttable_interval_ignored() {
        let iv = [CutInterval { load: 3, store: 3 }];
        assert!(min_stabbing(&iv).is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(200))]

        /// The greedy solution always covers, and matches the brute-force
        /// optimum in size.
        #[test]
        fn greedy_is_optimal(
            raw in prop::collection::vec((0usize..10, 1usize..11), 1..6)
        ) {
            let iv: Vec<CutInterval> = raw
                .into_iter()
                .map(|(a, b)| CutInterval { load: a.min(b.saturating_sub(1)), store: b.max(a + 1).min(10) })
                .collect();
            let greedy = min_stabbing(&iv);
            prop_assert!(covers(&iv, &greedy));
            let optimal = brute_force_min(&iv, 10);
            prop_assert_eq!(greedy.len(), optimal, "greedy {:?} vs optimum {}", greedy, optimal);
        }
    }
}
