//! Static region statistics (the static counterpart of the paper's Fig. 8).
//!
//! Dynamic (execution-weighted) distributions are collected by the VM
//! profiler in `ido-vm`; this module summarizes the static shape of a
//! partition: how many stores each region contains and how many live-in
//! registers each region needs — the two quantities that determine iDO's
//! logging advantage (stores covered per log operation) and logging cost
//! (cache lines per log operation).

use crate::regions::RegionAnalysis;

/// Histogram-style summary of a region partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticRegionSummary {
    /// Number of regions.
    pub region_count: usize,
    /// `stores_hist[k]` = number of regions with exactly `k` stores
    /// (saturating at the last bucket).
    pub stores_hist: Vec<usize>,
    /// `inputs_hist[k]` = number of regions with exactly `k` input
    /// registers (saturating at the last bucket).
    pub inputs_hist: Vec<usize>,
    /// Total static instructions across regions.
    pub total_insts: usize,
}

/// Number of histogram buckets (0..=9, last bucket saturates: "9+").
pub const HIST_BUCKETS: usize = 10;

/// Per-partition statistics extractor.
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionStats;

impl RegionStats {
    /// Summarizes `analysis`.
    pub fn summarize(analysis: &RegionAnalysis) -> StaticRegionSummary {
        let mut stores_hist = vec![0usize; HIST_BUCKETS];
        let mut inputs_hist = vec![0usize; HIST_BUCKETS];
        let mut total_insts = 0;
        for r in analysis.regions() {
            let s = r.num_stores().min(HIST_BUCKETS - 1);
            stores_hist[s] += 1;
            let i = r.num_inputs().min(HIST_BUCKETS - 1);
            inputs_hist[i] += 1;
            total_insts += r.members.len();
        }
        StaticRegionSummary {
            region_count: analysis.regions().len(),
            stores_hist,
            inputs_hist,
            total_insts,
        }
    }
}

impl StaticRegionSummary {
    /// Fraction of regions with at least `k` stores.
    pub fn frac_stores_at_least(&self, k: usize) -> f64 {
        if self.region_count == 0 {
            return 0.0;
        }
        let n: usize = self.stores_hist.iter().skip(k).sum();
        n as f64 / self.region_count as f64
    }

    /// Fraction of regions with fewer than `k` input registers (the paper
    /// reports >99% of dynamic regions have fewer than 5).
    pub fn frac_inputs_below(&self, k: usize) -> f64 {
        if self.region_count == 0 {
            return 0.0;
        }
        let n: usize = self.inputs_hist.iter().take(k).sum();
        n as f64 / self.region_count as f64
    }

    /// Mean static region length in instructions.
    pub fn mean_region_len(&self) -> f64 {
        if self.region_count == 0 {
            0.0
        } else {
            self.total_insts as f64 / self.region_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::analyze;
    use ido_ir::{Operand, ProgramBuilder};

    #[test]
    fn summary_counts_regions_and_buckets() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("t", 1);
        let p = f.param(0);
        // Region 1: two stores. Then alloc (cuts). Region 3: zero stores.
        f.store(p, 0, 1i64);
        f.store(p, 8, 2i64);
        let a = f.new_reg();
        f.alloc(a, 8i64);
        let v = f.new_reg();
        f.load(v, p, 0);
        f.ret(Some(Operand::Reg(v)));
        let id = f.finish().unwrap();
        let prog = pb.finish();
        let an = analyze(prog.function(id));
        let s = RegionStats::summarize(&an);
        assert_eq!(s.region_count, an.regions().len());
        assert_eq!(s.stores_hist.iter().sum::<usize>(), s.region_count);
        assert_eq!(s.inputs_hist.iter().sum::<usize>(), s.region_count);
        assert!(s.stores_hist[2] >= 1, "one region has two stores");
        assert!(s.frac_stores_at_least(2) > 0.0);
        assert!(s.mean_region_len() > 0.0);
        assert!(s.frac_inputs_below(5) > 0.0);
    }

    #[test]
    fn empty_summary_is_stable() {
        let s = StaticRegionSummary {
            region_count: 0,
            stores_hist: vec![0; HIST_BUCKETS],
            inputs_hist: vec![0; HIST_BUCKETS],
            total_insts: 0,
        };
        assert_eq!(s.frac_stores_at_least(1), 0.0);
        assert_eq!(s.frac_inputs_below(5), 0.0);
        assert_eq!(s.mean_region_len(), 0.0);
    }
}
