//! Enumeration of memory antidependence pairs and verification that a
//! region partition cuts all of them.
//!
//! The region partitioner in [`crate::regions`] *places* cuts greedily; this
//! module independently *enumerates* the load→store antidependence pairs so
//! tests (including property tests) can verify the partition's central
//! invariant: **no antidependent pair shares a region**.

use std::collections::BTreeSet;

use ido_ir::alias::{alias, mem_access, AccessKind, AliasResult, MemLoc};
use ido_ir::cfg::Cfg;
use ido_ir::{BlockId, Function, Reg};

use crate::regions::{Pos, RegionAnalysis};

/// A load followed (on some path, without an intervening region boundary)
/// by a possibly-aliasing store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AntidepPair {
    /// Position of the load.
    pub load: Pos,
    /// Position of the store.
    pub store: Pos,
    /// Location as seen by the load.
    pub loc: MemLoc,
}

/// Enumerates antidependent pairs that live within a *single region* of the
/// given partition. A correct partition returns the empty vector.
///
/// The search walks each region's members in order, tracking loads seen so
/// far in that region (with base-register invalidation identical to the
/// partitioner's), and reports any store that may alias one of them.
pub fn uncut_pairs(func: &Function, analysis: &RegionAnalysis) -> Vec<AntidepPair> {
    let mut pairs = Vec::new();
    for region in analysis.regions() {
        // Loads seen so far, tagged with position. Wildcards after base
        // redefinition keep the original location for reporting.
        let mut seen: Vec<(Pos, MemLoc, bool)> = Vec::new(); // (pos, loc, valid)
        let mut walk_order = region.members.clone();
        walk_order.sort(); // block-major order approximates execution order
        for &(b, i) in &walk_order {
            let inst = &func.block(b).insts[i];
            if let Some((loc, kind)) = mem_access(inst) {
                match kind {
                    AccessKind::Load => seen.push(((b, i), loc, true)),
                    AccessKind::Store => {
                        for &(lpos, lloc, valid) in &seen {
                            let conflict = if valid {
                                !matches!(alias(lloc, loc, true), AliasResult::No)
                            } else {
                                matches!(loc, MemLoc::Heap { .. })
                            };
                            if conflict {
                                pairs.push(AntidepPair { load: lpos, store: (b, i), loc: lloc });
                            }
                        }
                    }
                }
            }
            if let Some(d) = inst.def_reg() {
                invalidate(&mut seen, d);
            }
        }
    }
    pairs
}

fn invalidate(seen: &mut [(Pos, MemLoc, bool)], d: Reg) {
    for entry in seen.iter_mut() {
        if let MemLoc::Heap { base, .. } = entry.1 {
            if base == d {
                entry.2 = false;
            }
        }
    }
}

/// Enumerates *all* intra-block antidependence pairs of a function,
/// ignoring any cuts. Used for statistics and to sanity-check that the
/// partitioner had real work to do.
pub fn all_intra_block_pairs(func: &Function) -> Vec<AntidepPair> {
    let mut pairs = Vec::new();
    for (bi, bb) in func.blocks().iter().enumerate() {
        let b = BlockId(bi as u32);
        let mut seen: Vec<(Pos, MemLoc, bool)> = Vec::new();
        for (i, inst) in bb.insts.iter().enumerate() {
            if let Some((loc, kind)) = mem_access(inst) {
                match kind {
                    AccessKind::Load => seen.push(((b, i), loc, true)),
                    AccessKind::Store => {
                        for &(lpos, lloc, valid) in &seen {
                            let conflict = if valid {
                                !matches!(alias(lloc, loc, true), AliasResult::No)
                            } else {
                                matches!(loc, MemLoc::Heap { .. })
                            };
                            if conflict {
                                pairs.push(AntidepPair { load: lpos, store: (b, i), loc: lloc });
                            }
                        }
                    }
                }
            }
            if let Some(d) = inst.def_reg() {
                invalidate(&mut seen, d);
            }
        }
    }
    pairs
}

/// Checks the partition invariants, returning human-readable violations.
/// Used by integration and property tests.
pub fn check_partition(func: &Function, analysis: &RegionAnalysis) -> Vec<String> {
    let mut problems = Vec::new();
    for p in uncut_pairs(func, analysis) {
        problems.push(format!(
            "antidependence not cut: load at {:?} vs store at {:?} on {:?}",
            p.load, p.store, p.loc
        ));
    }
    if let Some((pos, r)) = crate::regions::find_war_violation(func, analysis) {
        problems.push(format!("register WAR: input {r} redefined at {pos:?}"));
    }
    // Single-entry: every non-entry member's intra-region predecessors must
    // be in the same region, and the entry must be the unique cut.
    let cfg = Cfg::new(func);
    for region in analysis.regions() {
        let members: BTreeSet<Pos> = region.members.iter().copied().collect();
        for &(b, i) in &region.members {
            if (b, i) == region.entry {
                continue;
            }
            if i > 0 {
                if !members.contains(&(b, i - 1)) {
                    problems.push(format!(
                        "region {:?}: member ({b:?},{i}) has non-member intra-block predecessor",
                        region.id
                    ));
                }
            } else {
                for &p in cfg.preds(b) {
                    let last = func.block(p).insts.len() - 1;
                    if analysis.region_at((p, last)) != Some(region.id) {
                        problems.push(format!(
                            "region {:?}: block {b:?} entered from foreign region without cut",
                            region.id
                        ));
                    }
                }
            }
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::{analyze, partition};
    use ido_ir::{Operand, ProgramBuilder};

    #[test]
    fn partition_cuts_all_pairs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("t", 2);
        let p = f.param(0);
        let q = f.param(1);
        let a = f.new_reg();
        let b = f.new_reg();
        f.load(a, p, 0);
        f.load(b, q, 0);
        f.store(p, 0, Operand::Reg(b)); // antidep with first load
        f.store(q, 0, Operand::Reg(a)); // antidep with second load
        f.ret(None);
        let id = f.finish().unwrap();
        let mut prog = pb.finish();
        let func = prog.function_mut(id);
        assert!(!all_intra_block_pairs(func).is_empty());
        let an = partition(func);
        assert!(uncut_pairs(func, &an).is_empty());
        assert!(check_partition(func, &an).is_empty());
    }

    #[test]
    fn unpartitioned_function_reports_pairs() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("t", 1);
        let p = f.param(0);
        let a = f.new_reg();
        f.load(a, p, 0);
        f.store(p, 0, 1i64);
        f.ret(None);
        let id = f.finish().unwrap();
        let prog = pb.finish();
        let pairs = all_intra_block_pairs(prog.function(id));
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].load, (ido_ir::BlockId(0), 0));
        assert_eq!(pairs[0].store, (ido_ir::BlockId(0), 1));
    }

    #[test]
    fn check_partition_accepts_clean_analyze() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("clean", 1);
        let p = f.param(0);
        let a = f.new_reg();
        f.load(a, p, 0);
        f.ret(Some(Operand::Reg(a)));
        let id = f.finish().unwrap();
        let prog = pb.finish();
        let an = analyze(prog.function(id));
        assert!(check_partition(prog.function(id), &an).is_empty());
    }
}
