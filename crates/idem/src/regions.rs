//! Region cut placement, construction, and the register-WAR fixup.

use std::collections::{BTreeMap, BTreeSet};

use ido_ir::alias::{alias, mem_access, AccessKind, AliasResult, MemLoc};
use ido_ir::cfg::Cfg;
use ido_ir::liveness::{reg_var, slot_var, Liveness, Var};
use ido_ir::{BlockId, Function, Inst, Operand, Reg, StackSlot};

/// A code position: `(block, instruction index)`. A *cut at `p`* means a
/// region boundary immediately **before** the instruction at `p`.
pub type Pos = (BlockId, usize);

/// Alias-analysis precision used when detecting memory antidependences.
/// The paper notes (Section V-C) that region sizes depend directly on the
/// alias analysis; this knob exists for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AliasMode {
    /// LLVM-basicAA-like: stack slots exact, same-base offsets exact,
    /// different bases may alias. The paper's configuration.
    #[default]
    Basic,
    /// No alias analysis at all: every store conflicts with every
    /// outstanding load — the lower bound on region sizes.
    None,
    /// Oracle precision: only provably-identical locations conflict
    /// (different heap bases assumed disjoint). An *upper bound* on region
    /// sizes for the ablation study — unsound as a compilation mode, so
    /// [`partition`] never uses it; analysis only.
    Precise,
}

/// Dense identifier of a region within one function's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// One idempotent region.
#[derive(Debug, Clone)]
pub struct Region {
    /// This region's id.
    pub id: RegionId,
    /// Entry position (always a cut).
    pub entry: Pos,
    /// Member instruction positions, in block-major order.
    pub members: Vec<Pos>,
    /// Input registers: live at entry and used in the region. These are the
    /// values recovery must restore from the persistent register file.
    pub input_regs: Vec<Reg>,
    /// Input stack slots (live at entry, used in the region). Restored in
    /// place from NVM, so they need no log slots — but they must never be
    /// overwritten in-region, which the antidependence cuts guarantee.
    pub input_slots: Vec<StackSlot>,
    /// Output registers (`Def ∩ LiveOut`, Eq. 1): persisted into the log at
    /// the region's end.
    pub output_regs: Vec<Reg>,
    /// Output stack slots (written back at the region's end).
    pub output_slots: Vec<StackSlot>,
    /// Static count of heap stores in the region.
    pub heap_stores: usize,
    /// Static count of stack stores in the region.
    pub stack_stores: usize,
}

impl Region {
    /// Total static persistent stores (heap + stack).
    pub fn num_stores(&self) -> usize {
        self.heap_stores + self.stack_stores
    }

    /// Number of input registers (the paper's Fig. 8 "live-in registers").
    pub fn num_inputs(&self) -> usize {
        self.input_regs.len()
    }
}

/// The full partition of one function into idempotent regions.
#[derive(Debug, Clone)]
pub struct RegionAnalysis {
    regions: Vec<Region>,
    region_of: BTreeMap<Pos, RegionId>,
    cuts: BTreeSet<Pos>,
}

impl RegionAnalysis {
    /// All regions, indexed by [`RegionId`].
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// A region by id.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// The region containing the instruction at `pos`.
    pub fn region_at(&self, pos: Pos) -> Option<RegionId> {
        self.region_of.get(&pos).copied()
    }

    /// All cut positions (region entries), including implicit single-entry
    /// joins.
    pub fn cuts(&self) -> &BTreeSet<Pos> {
        &self.cuts
    }

    /// True if a region boundary lies immediately before `pos`.
    pub fn is_cut(&self, pos: Pos) -> bool {
        self.cuts.contains(&pos)
    }
}

/// Outstanding-loads abstract state for antidependence detection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Outstanding {
    locs: BTreeSet<MemLoc>,
    /// Set when a tracked heap location's base register was redefined: its
    /// address is no longer describable, so any later store may alias it.
    wildcard: bool,
}

impl Outstanding {
    fn clear(&mut self) {
        self.locs.clear();
        self.wildcard = false;
    }

    fn note_load(&mut self, loc: MemLoc) {
        self.locs.insert(loc);
    }

    fn note_def(&mut self, r: Reg) {
        let before = self.locs.len();
        self.locs.retain(|l| !matches!(l, MemLoc::Heap { base, .. } if *base == r));
        if self.locs.len() != before {
            self.wildcard = true;
        }
    }

    fn store_conflicts(&self, loc: MemLoc, mode: AliasMode) -> bool {
        if mode == AliasMode::None {
            return !self.locs.is_empty() || self.wildcard;
        }
        if mode == AliasMode::Precise {
            return self
                .locs
                .iter()
                .any(|l| matches!(alias(*l, loc, true), AliasResult::Must));
        }
        if self.wildcard && matches!(loc, MemLoc::Heap { .. }) {
            return true;
        }
        self.locs.iter().any(|l| {
            // Bases are tracked precisely (redefinitions invalidate), so
            // same-base offset reasoning is valid here.
            !matches!(alias(*l, loc, true), AliasResult::No)
        })
    }

    fn merge(&mut self, other: &Outstanding) -> bool {
        let n = self.locs.len();
        let w = self.wildcard;
        self.locs.extend(other.locs.iter().copied());
        self.wildcard |= other.wildcard;
        self.locs.len() != n || self.wildcard != w
    }
}

/// Computes the region partition of `func` without mutating it. If the
/// function still contains register WAR violations (an input register
/// redefined inside its region), the analysis reports them faithfully; use
/// [`partition`] to repair them.
pub fn analyze(func: &Function) -> RegionAnalysis {
    analyze_with(func, AliasMode::Basic)
}

/// [`analyze`] with an explicit alias-analysis precision (ablation knob).
pub fn analyze_with(func: &Function, mode: AliasMode) -> RegionAnalysis {
    let cfg = Cfg::new(func);
    let liveness = Liveness::new(func, &cfg);
    let mut cuts = structural_cuts(func, &cfg);
    add_antidep_cuts(func, &cfg, &mut cuts, mode);
    build(func, &cfg, &liveness, cuts)
}

/// Computes the region partition, repairing register antidependences on
/// region inputs by renaming (see the crate docs). Mutates `func` by
/// renaming defs and inserting `RegionMarker` + compensation `mov`s; returns
/// the final analysis, which is guaranteed WAR-free.
pub fn partition(func: &mut Function) -> RegionAnalysis {
    loop {
        let analysis = analyze(func);
        match find_war_violation(func, &analysis) {
            Some((pos, r)) => apply_war_fixup(func, pos, r),
            None => return analysis,
        }
    }
}

/// Finds the first definition of a region-input register inside its own
/// region, if any.
pub fn find_war_violation(func: &Function, analysis: &RegionAnalysis) -> Option<(Pos, Reg)> {
    for region in &analysis.regions {
        for &(b, i) in &region.members {
            let inst = &func.block(b).insts[i];
            if let Some(d) = inst.def_reg() {
                if region.input_regs.contains(&d) {
                    return Some(((b, i), d));
                }
            }
        }
    }
    None
}

/// Renames the definition at `pos` (of input register `r`) to a fresh
/// register, inserts a region marker after it, and begins the successor
/// region with `mov r, r'`.
fn apply_war_fixup(func: &mut Function, pos: Pos, r: Reg) {
    let fresh = func.fresh_reg(r.class);
    let (b, i) = pos;
    let bb = func.block_mut(b);
    rename_def(&mut bb.insts[i], r, fresh);
    bb.insts.insert(i + 1, Inst::RegionMarker);
    bb.insts.insert(i + 2, Inst::Mov { dst: r, src: Operand::Reg(fresh) });
}

fn rename_def(inst: &mut Inst, from: Reg, to: Reg) {
    match inst {
        Inst::Mov { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::LoadStack { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::Alloc { dst, .. } => {
            assert_eq!(*dst, from, "rename target mismatch");
            *dst = to;
        }
        Inst::Call { ret: Some(dst), .. } => {
            assert_eq!(*dst, from, "rename target mismatch");
            *dst = to;
        }
        other => panic!("instruction {other} does not define a register"),
    }
}

/// Structural cuts: the function entry, lock/durable-region boundaries,
/// runtime calls, and explicit `RegionMarker`s. Loop back edges are *not*
/// cut (see below).
fn structural_cuts(func: &Function, cfg: &Cfg) -> BTreeSet<Pos> {
    let mut cuts = BTreeSet::new();
    cuts.insert((BlockId(0), 0));
    for (bi, bb) in func.blocks().iter().enumerate() {
        let b = BlockId(bi as u32);
        let len = bb.insts.len();
        for (i, inst) in bb.insts.iter().enumerate() {
            match inst {
                // Boundary after acquire: the robbed-lock effect (Sec. III-B)
                // relies on no FASE instruction preceding this boundary.
                Inst::Lock { .. } | Inst::DurableBegin
                    if i + 1 < len => {
                        cuts.insert((b, i + 1));
                    }
                // Boundary before release: everything the FASE did under the
                // lock is persisted before the lock can be stolen.
                Inst::Unlock { .. } | Inst::DurableEnd => {
                    cuts.insert((b, i));
                }
                // Runtime calls with external side effects delimit regions
                // on both sides so they are never re-executed.
                Inst::Call { .. } | Inst::Alloc { .. } | Inst::Free { .. } => {
                    cuts.insert((b, i));
                    if i + 1 < len {
                        cuts.insert((b, i + 1));
                    }
                }
                Inst::RegionMarker => {
                    cuts.insert((b, i));
                }
                _ => {}
            }
        }
    }
    // Loop back edges are deliberately *not* structural cuts: a read-only
    // traversal loop is idempotent as a whole (restarting it from the region
    // entry re-traverses from scratch), which is exactly why the paper's
    // Redis read paths are nearly free under iDO. Loop-carried memory
    // antidependences are found by the cross-block fixpoint (which
    // propagates around back edges), and loop-carried register WARs are
    // repaired by `partition`'s fixup, which inserts its own boundary.
    let _ = cfg.back_edges();
    cuts
}

/// Adds cuts breaking every memory antidependence (load followed by a
/// possibly-aliasing store with no intervening cut). Cuts are placed
/// immediately before the violating store — the right-endpoint greedy rule,
/// optimal for the interval-stabbing formulation.
fn add_antidep_cuts(func: &Function, cfg: &Cfg, cuts: &mut BTreeSet<Pos>, mode: AliasMode) {
    loop {
        let block_in = outstanding_fixpoint(func, cfg, cuts);
        let mut new_cuts = Vec::new();
        for (bi, bb) in func.blocks().iter().enumerate() {
            let b = BlockId(bi as u32);
            let mut state = block_in[bi].clone();
            for (i, inst) in bb.insts.iter().enumerate() {
                if cuts.contains(&(b, i)) {
                    state.clear();
                }
                if let Some((loc, kind)) = mem_access(inst) {
                    match kind {
                        AccessKind::Load => state.note_load(loc),
                        AccessKind::Store => {
                            if state.store_conflicts(loc, mode) {
                                new_cuts.push((b, i));
                                state.clear();
                            }
                        }
                    }
                }
                if let Some(d) = inst.def_reg() {
                    state.note_def(d);
                }
            }
        }
        if new_cuts.is_empty() {
            return;
        }
        cuts.extend(new_cuts);
    }
}

/// Forward fixpoint: outstanding loads at each block entry, given `cuts`.
fn outstanding_fixpoint(func: &Function, cfg: &Cfg, cuts: &BTreeSet<Pos>) -> Vec<Outstanding> {
    let n = func.num_blocks();
    let mut block_in: Vec<Outstanding> = vec![Outstanding::default(); n];
    let mut block_out: Vec<Outstanding> = vec![Outstanding::default(); n];
    let rpo = cfg.rpo();
    let mut changed = true;
    while changed {
        changed = false;
        for &b in &rpo {
            let bi = b.0 as usize;
            let mut input = Outstanding::default();
            for &p in cfg.preds(b) {
                input.merge(&block_out[p.0 as usize]);
            }
            if input != block_in[bi] {
                block_in[bi] = input.clone();
                changed = true;
            }
            let mut state = input;
            for (i, inst) in func.block(b).insts.iter().enumerate() {
                if cuts.contains(&(b, i)) {
                    state.clear();
                }
                if let Some((loc, AccessKind::Load)) = mem_access(inst) {
                    state.note_load(loc);
                }
                if let Some(d) = inst.def_reg() {
                    state.note_def(d);
                }
            }
            if state != block_out[bi] {
                block_out[bi] = state;
                changed = true;
            }
        }
    }
    block_in
}

/// Builds regions from the cut set: assigns every instruction to a region,
/// adding implicit cuts at joins whose predecessors disagree (single-entry
/// enforcement), then computes per-region inputs, outputs, and store counts.
fn build(
    func: &Function,
    cfg: &Cfg,
    liveness: &Liveness,
    mut cuts: BTreeSet<Pos>,
) -> RegionAnalysis {
    let reachable = cfg.reachable();
    for (bi, r) in reachable.iter().enumerate() {
        if !*r {
            // Unreachable code gets its own region; it never executes.
            cuts.insert((BlockId(bi as u32), 0));
        }
    }

    // Membership assignment. A block head that is not a cut inherits its
    // predecessors' region. Predecessors not yet assigned (back edges) are
    // treated optimistically; after the pass, any head whose predecessors
    // disagree with its assignment becomes an implicit cut (single-entry
    // enforcement) and the pass restarts. Cuts only grow, so this
    // terminates.
    let (region_of, entries) = loop {
        let mut region_of: BTreeMap<Pos, RegionId> = BTreeMap::new();
        let mut entries: Vec<Pos> = Vec::new();
        for &b in &cfg.rpo() {
            let bb = func.block(b);
            let mut cur: Option<RegionId> = None;
            for i in 0..bb.insts.len() {
                let pos = (b, i);
                let id = if cuts.contains(&pos) {
                    entries.push(pos);
                    RegionId(entries.len() as u32 - 1)
                } else if let Some(cur) = cur {
                    cur
                } else {
                    // Inherit from the first already-assigned predecessor.
                    let known = cfg
                        .preds(b)
                        .iter()
                        .filter(|p| reachable[p.0 as usize])
                        .find_map(|p| {
                            let last = func.block(*p).insts.len() - 1;
                            region_of.get(&(*p, last)).copied()
                        });
                    match known {
                        Some(r) => r,
                        None => {
                            // No assigned predecessor at all: treat as entry.
                            entries.push(pos);
                            RegionId(entries.len() as u32 - 1)
                        }
                    }
                };
                region_of.insert(pos, id);
                cur = Some(id);
            }
        }
        // Consistency check: every non-cut head must agree with all of its
        // reachable predecessors.
        let mut new_cuts = Vec::new();
        for (bi, bb) in func.blocks().iter().enumerate() {
            let b = BlockId(bi as u32);
            if !reachable[bi] || cuts.contains(&(b, 0)) || bb.insts.is_empty() {
                continue;
            }
            let my = region_of[&(b, 0)];
            let disagrees = cfg.preds(b).iter().any(|p| {
                if !reachable[p.0 as usize] {
                    return false;
                }
                let last = func.block(*p).insts.len() - 1;
                region_of.get(&(*p, last)) != Some(&my)
            });
            if disagrees {
                new_cuts.push((b, 0));
            }
        }
        if new_cuts.is_empty() {
            break (region_of, entries);
        }
        cuts.extend(new_cuts);
    };

    // Collect members per region.
    let mut members: Vec<Vec<Pos>> = vec![Vec::new(); entries.len()];
    for (&pos, &id) in &region_of {
        members[id.0 as usize].push(pos);
    }

    let mut regions = Vec::with_capacity(entries.len());
    for (idx, entry) in entries.iter().enumerate() {
        let id = RegionId(idx as u32);
        let mems = std::mem::take(&mut members[idx]);

        // Used and defined variables.
        let mut used_regs: BTreeSet<Reg> = BTreeSet::new();
        let mut used_slots: BTreeSet<StackSlot> = BTreeSet::new();
        let mut def_regs: BTreeSet<Reg> = BTreeSet::new();
        let mut def_slots: BTreeSet<StackSlot> = BTreeSet::new();
        let mut heap_stores = 0;
        let mut stack_stores = 0;
        for &(b, i) in &mems {
            let inst = &func.block(b).insts[i];
            used_regs.extend(inst.uses());
            used_slots.extend(inst.stack_uses());
            def_regs.extend(inst.def_reg());
            def_slots.extend(inst.stack_def());
            match inst {
                Inst::Store { .. } => heap_stores += 1,
                Inst::StoreStack { .. } => stack_stores += 1,
                _ => {}
            }
        }

        // Inputs: live at entry ∩ used in region.
        let entry_live = liveness.live_before(func, entry.0, entry.1);
        let input_regs: Vec<Reg> = used_regs
            .iter()
            .copied()
            .filter(|r| entry_live.contains(&reg_var(*r)))
            .collect();
        let input_slots: Vec<StackSlot> = used_slots
            .iter()
            .copied()
            .filter(|s| entry_live.contains(&slot_var(*s)))
            .collect();

        // Outputs: Def ∩ LiveOut over all exits.
        let mut exit_live: BTreeSet<Var> = BTreeSet::new();
        for &(b, i) in &mems {
            let inst = &func.block(b).insts[i];
            if inst.is_terminator() {
                for s in inst.targets() {
                    if region_of.get(&(s, 0)) != Some(&id) {
                        exit_live.extend(liveness.live_in(s));
                    }
                }
            } else {
                let next = (b, i + 1);
                if region_of.get(&next) != Some(&id) {
                    exit_live.extend(liveness.live_before(func, b, i + 1));
                }
            }
        }
        let output_regs: Vec<Reg> =
            def_regs.iter().copied().filter(|r| exit_live.contains(&reg_var(*r))).collect();
        let output_slots: Vec<StackSlot> =
            def_slots.iter().copied().filter(|s| exit_live.contains(&slot_var(*s))).collect();

        regions.push(Region {
            id,
            entry: *entry,
            members: mems,
            input_regs,
            input_slots,
            output_regs,
            output_slots,
            heap_stores,
            stack_stores,
        });
    }

    RegionAnalysis { regions, region_of, cuts }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_ir::{BinOp, ProgramBuilder};

    fn single_func(build: impl FnOnce(&mut ido_ir::FunctionBuilder<'_>)) -> Function {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("t", 2);
        build(&mut f);
        let id = f.finish().unwrap();
        pb.finish().function(id).clone()
    }

    #[test]
    fn straightline_loads_one_region() {
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            let b = f.new_reg();
            f.load(a, p, 0);
            f.load(b, p, 8);
            f.ret(Some(Operand::Reg(b)));
        });
        let an = analyze(&f);
        assert_eq!(an.regions().len(), 1, "pure loads never cut");
    }

    #[test]
    fn load_then_aliasing_store_is_cut() {
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            f.load(a, p, 0);
            f.store(p, 0, 5i64); // WAR on mem[p]
            f.ret(None);
        });
        let an = analyze(&f);
        assert_eq!(an.regions().len(), 2);
        assert!(an.is_cut((BlockId(0), 1)), "cut placed immediately before the store");
    }

    #[test]
    fn store_then_load_is_not_cut() {
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            f.store(p, 0, 5i64);
            f.load(a, p, 0);
            f.ret(Some(Operand::Reg(a)));
        });
        let an = analyze(&f);
        assert_eq!(an.regions().len(), 1, "RAW is re-executable; only WAR cuts");
    }

    #[test]
    fn disjoint_offsets_do_not_cut() {
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            f.load(a, p, 0);
            f.store(p, 8, 5i64); // provably disjoint word
            f.ret(None);
        });
        assert_eq!(analyze(&f).regions().len(), 1);
    }

    #[test]
    fn different_bases_conservatively_cut() {
        let f = single_func(|f| {
            let p = f.param(0);
            let q = f.param(1);
            let a = f.new_reg();
            f.load(a, p, 0);
            f.store(q, 0, 5i64); // basicAA: may alias
            f.ret(None);
        });
        assert_eq!(analyze(&f).regions().len(), 2);
    }

    #[test]
    fn base_redefinition_makes_store_conflict() {
        // load mem[p]; p = p'; store mem[p] — pointer chase: conservative cut.
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            f.load(a, p, 0);
            f.mov(p, Operand::Reg(a)); // p redefined (chase)
            f.store(p, 0, 1i64);
            f.ret(None);
        });
        let an = analyze(&f);
        assert!(an.regions().len() >= 2);
    }

    #[test]
    fn lock_and_unlock_are_boundaries() {
        let f = single_func(|f| {
            let p = f.param(0);
            f.lock(p);
            f.store(p, 8, 1i64);
            f.unlock(p);
            f.ret(None);
        });
        let an = analyze(&f);
        // cut after lock (index 1) and before unlock (index 2)
        assert!(an.is_cut((BlockId(0), 1)));
        assert!(an.is_cut((BlockId(0), 2)));
    }

    #[test]
    fn counting_loop_is_one_idempotent_region() {
        // i is initialized *inside* the region, so re-executing the whole
        // loop from the entry is deterministic: no cuts are needed at all.
        let f = single_func(|f| {
            let n = f.param(0);
            let i = f.new_reg();
            let c = f.new_reg();
            let head = f.new_block();
            let body = f.new_block();
            let exit = f.new_block();
            f.mov(i, 0i64);
            f.jump(head);
            f.switch_to(head);
            f.bin(BinOp::Lt, c, i, n);
            f.branch(c, body, exit);
            f.switch_to(body);
            f.bin(BinOp::Add, i, i, 1i64);
            f.jump(head);
            f.switch_to(exit);
            f.ret(None);
        });
        let an = analyze(&f);
        assert_eq!(an.regions().len(), 1, "pure counting loop stays one region");
        assert!(find_war_violation(&f, &an).is_none());
    }

    #[test]
    fn traversal_loop_with_loop_carried_store_is_cut() {
        // Each iteration loads a node then stores to it: the cross-iteration
        // WAR must be found by the fixpoint propagating around the back edge.
        let f = single_func(|f| {
            let cur = f.param(0);
            let v = f.new_reg();
            let head = f.new_block();
            let exit = f.new_block();
            f.jump(head);
            f.switch_to(head);
            f.load(v, cur, 8); // read node value
            f.store(cur, 8, 1i64); // same-word WAR within the iteration
            f.load(cur, cur, 0); // chase next pointer (redefines base)
            f.branch(cur, head, exit);
            f.switch_to(exit);
            f.ret(None);
        });
        let an = analyze(&f);
        assert!(an.regions().len() >= 2, "the WAR inside/around the loop must cut");
    }

    #[test]
    fn join_from_two_regions_is_single_entry() {
        // bb0 branches to bb1 / bb2; bb1 contains an alloc (cut), so bb1 and
        // bb2 end in different regions; their join must start a new region.
        let f = single_func(|f| {
            let c = f.param(0);
            let l = f.new_block();
            let r = f.new_block();
            let j = f.new_block();
            f.branch(c, l, r);
            f.switch_to(l);
            let x = f.new_reg();
            f.alloc(x, 16i64);
            f.jump(j);
            f.switch_to(r);
            f.jump(j);
            f.switch_to(j);
            f.ret(None);
        });
        let an = analyze(&f);
        assert!(an.is_cut((BlockId(3), 0)), "join of differing regions starts fresh");
    }

    #[test]
    fn war_violation_detected_and_repaired() {
        let mut pb = ProgramBuilder::new();
        let mut fb = pb.new_function("w", 2);
        let p = fb.param(0);
        let v = fb.param(1); // live-in at the entry region
        fb.bin(BinOp::Add, v, v, 1i64); // v is a region input, redefined: WAR
        fb.store(p, 0, Operand::Reg(v));
        fb.ret(None);
        let id = fb.finish().unwrap();
        let mut prog = pb.finish();
        let func = prog.function_mut(id);

        let before = analyze(func);
        assert!(find_war_violation(func, &before).is_some());

        let after = partition(func);
        assert!(find_war_violation(func, &after).is_none(), "partition repairs all WARs");
        // The repair introduced a marker and a compensation mov.
        let has_marker = func.iter_insts().any(|(_, i)| matches!(i, Inst::RegionMarker));
        assert!(has_marker);
    }

    #[test]
    fn loop_increment_repair_converges() {
        // while (i < n) { i = i + 1 } — the classic loop-carried WAR.
        let mut pb = ProgramBuilder::new();
        let mut fb = pb.new_function("l", 1);
        let n = fb.param(0);
        let i = fb.new_reg();
        let c = fb.new_reg();
        let head = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.mov(i, 0i64);
        fb.jump(head);
        fb.switch_to(head);
        fb.bin(BinOp::Lt, c, i, n);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.bin(BinOp::Add, i, i, 1i64);
        fb.jump(head);
        fb.switch_to(exit);
        fb.ret(Some(Operand::Reg(i)));
        let id = fb.finish().unwrap();
        let mut prog = pb.finish();
        let func = prog.function_mut(id);
        let an = partition(func);
        assert!(find_war_violation(func, &an).is_none());
    }

    #[test]
    fn inputs_and_outputs_follow_equation_one() {
        // Region: a = mem[p]; b = a + 1; then cut (alloc); then use b.
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            let b = f.new_reg();
            f.load(a, p, 0);
            f.bin(BinOp::Add, b, a, 1i64);
            let t = f.new_reg();
            f.alloc(t, 8i64); // cut before and after
            f.store(t, 0, Operand::Reg(b));
            f.ret(None);
        });
        let an = analyze(&f);
        let first = &an.regions()[0];
        assert_eq!(first.entry, (BlockId(0), 0));
        assert!(first.input_regs.contains(&Reg::int(0)), "p is an input");
        assert!(first.output_regs.contains(&Reg::int(3)), "b is live-out and defined");
        assert!(
            !first.output_regs.contains(&Reg::int(2)),
            "a dies inside the region: not an output"
        );
    }

    #[test]
    fn store_counts_are_per_region() {
        let f = single_func(|f| {
            let p = f.param(0);
            f.store(p, 0, 1i64);
            f.store(p, 8, 2i64);
            let s = f.new_stack_slot();
            f.store_stack(s, 3i64);
            f.ret(None);
        });
        let an = analyze(&f);
        assert_eq!(an.regions().len(), 1);
        assert_eq!(an.regions()[0].heap_stores, 2);
        assert_eq!(an.regions()[0].stack_stores, 1);
        assert_eq!(an.regions()[0].num_stores(), 3);
    }

    #[test]
    fn every_instruction_belongs_to_exactly_one_region() {
        let f = single_func(|f| {
            let p = f.param(0);
            let a = f.new_reg();
            f.lock(p);
            f.load(a, p, 8);
            f.store(p, 8, 1i64);
            f.unlock(p);
            f.ret(None);
        });
        let an = analyze(&f);
        let mut count = 0;
        for ((b, i), _) in f.iter_insts() {
            assert!(an.region_at((b, i)).is_some(), "({b:?},{i}) unassigned");
            count += 1;
        }
        let member_total: usize = an.regions().iter().map(|r| r.members.len()).sum();
        assert_eq!(member_total, count);
    }
}
