//! The Memcached-like and Redis-like key-value workloads (Section V-A).
//!
//! Both stores are bucket-chained hash tables over the simulated persistent
//! heap (node layout `[next][key][value]`); the network/protocol layers of
//! the real servers are irrelevant to persistence overhead and are elided.
//!
//! * [`memcached`]: multi-threaded with the coarse-grained single lock of
//!   Memcached 1.2.4 (the version the paper instruments via WHISPER);
//!   uniformly distributed keys; insertion-intensive (50% set) and
//!   search-intensive (10% set) mixes.
//! * [`redis`]: single-threaded; `put` operations are wrapped in
//!   programmer-delineated durable regions (the NVML-style annotations the
//!   paper builds on), `get`s run outside FASEs; 80% get / 20% put with a
//!   power-law key distribution over a configurable key range.

use ido_ir::{BinOp, BlockId, FunctionBuilder, Operand, Program, ProgramBuilder, Reg};
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{PmemHandle, PAddr};
use ido_vm::Vm;

use crate::harness::WorkloadSpec;
use crate::util::{emit_arena_take, emit_bucket_hash, emit_powerlaw_key, emit_uniform_key, emit_xorshift};

// Item layout mirrors a real cache item: link, key, value, flags, cas id,
// and an expiry/LRU timestamp.
const NEXT: i64 = 0;
const KEY: i64 = 8;
const VAL: i64 = 16;
const FLAGS: i64 = 24;
const CAS: i64 = 32;
const EXP: i64 = 40;
const ITEM_BYTES: i64 = 48;

fn build_chain_node(h: &mut PmemHandle, alloc: &NvAllocator, key: i64, value: u64, next: PAddr) -> PAddr {
    let node = alloc.alloc(h, ITEM_BYTES as usize).expect("setup node");
    h.write_u64(node, next as u64);
    h.write_u64(node + 8, key as u64);
    h.write_u64(node + 16, value);
    h.write_u64(node + 24, 0);
    h.write_u64(node + 32, 0);
    h.write_u64(node + 40, 0);
    h.persist(node, ITEM_BYTES as usize);
    node
}

/// Builds the hash directory `[n_buckets][head_0]…`, pre-populating even
/// keys of `0..range` into sorted chains. Returns the directory address.
fn build_table(h: &mut PmemHandle, alloc: &NvAllocator, buckets: u64, range: u64) -> PAddr {
    let directory = alloc.alloc(h, 8 + buckets as usize * 8).expect("directory");
    h.write_u64(directory, buckets);
    let mut heads = vec![0 as PAddr; buckets as usize];
    let mut k = range as i64 - 1;
    while k >= 0 {
        if k % 2 == 0 {
            let b = (((k as u64).wrapping_mul(0x9E37_79B9) >> 16) & 0x7FFF_FFFF) % buckets;
            heads[b as usize] = build_chain_node(h, alloc, k, (k as u64) << 1, heads[b as usize]);
        }
        k -= 1;
    }
    for (i, head) in heads.iter().enumerate() {
        h.write_u64(directory + 8 + i * 8, *head as u64);
    }
    h.persist(directory, 8 + buckets as usize * 8);
    directory
}

/// Emits `sentinel-less` sorted-chain search: positions `(pred_slot, succ)`
/// where `pred_slot` is the *address of the pointer* to `succ` (the bucket
/// head slot or a node's next field). Returns `(pred_slot, succ)` registers
/// valid in `at_pos`, to which control falls through.
fn emit_chain_search(
    f: &mut FunctionBuilder<'_>,
    head_slot: Reg,
    key: Reg,
) -> (Reg, Reg, BlockId) {
    let walk = f.new_block();
    let check = f.new_block();
    let step = f.new_block();
    let at_pos = f.new_block();

    let pred_slot = f.new_reg();
    f.mov(pred_slot, Operand::Reg(head_slot));
    f.jump(walk);

    f.switch_to(walk);
    let succ = f.new_reg();
    f.load(succ, pred_slot, 0);
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, succ, 0i64);
    f.branch(is_end, at_pos, check);

    f.switch_to(check);
    let sk = f.new_reg();
    f.load(sk, succ, KEY);
    let ge = f.new_reg();
    f.bin(BinOp::Ge, ge, sk, key);
    f.branch(ge, at_pos, step);

    f.switch_to(step);
    // pred_slot = &succ->next
    f.bin(BinOp::Add, pred_slot, succ, NEXT);
    f.jump(walk);

    f.switch_to(at_pos);
    (pred_slot, succ, at_pos)
}

/// Emits a chain `put` (update-or-insert) from `at_pos`; continues at
/// `cont`.
fn emit_chain_put(
    f: &mut FunctionBuilder<'_>,
    pred_slot: Reg,
    succ: Reg,
    key: Reg,
    value: Reg,
    arena: Reg,
    cont: BlockId,
) {
    let check = f.new_block();
    let update = f.new_block();
    let insert = f.new_block();
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, succ, 0i64);
    f.branch(is_end, insert, check);

    f.switch_to(check);
    let sk = f.new_reg();
    f.load(sk, succ, KEY);
    let eq = f.new_reg();
    f.bin(BinOp::Eq, eq, sk, key);
    f.branch(eq, update, insert);

    f.switch_to(update);
    // A set on an existing item rewrites value, CAS id, and expiry.
    f.store(succ, VAL, Operand::Reg(value));
    f.store(succ, CAS, Operand::Reg(value));
    f.store(succ, EXP, Operand::Reg(key));
    f.jump(cont);

    f.switch_to(insert);
    let node = f.new_reg();
    emit_arena_take(f, node, arena, ITEM_BYTES);
    f.store(node, NEXT, Operand::Reg(succ));
    f.store(node, KEY, Operand::Reg(key));
    f.store(node, VAL, Operand::Reg(value));
    f.store(node, FLAGS, 1i64);
    f.store(node, CAS, Operand::Reg(value));
    f.store(node, EXP, Operand::Reg(key));
    f.store(pred_slot, 0, Operand::Reg(node));
    f.jump(cont);
}

/// Emits a chain `get` from `at_pos`; continues at `cont`.
fn emit_chain_get(f: &mut FunctionBuilder<'_>, succ: Reg, key: Reg, cont: BlockId) {
    let check = f.new_block();
    let found = f.new_block();
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, succ, 0i64);
    f.branch(is_end, cont, check);

    f.switch_to(check);
    let sk = f.new_reg();
    f.load(sk, succ, KEY);
    let eq = f.new_reg();
    f.bin(BinOp::Eq, eq, sk, key);
    f.branch(eq, found, cont);

    f.switch_to(found);
    let v = f.new_reg();
    f.load(v, succ, VAL);
    f.jump(cont);
}

/// Emits `slot = &directory[1 + bucket(key)]`.
fn emit_bucket_slot(f: &mut FunctionBuilder<'_>, slot: Reg, directory: Reg, key: Reg, n_buckets: Reg) {
    let b = f.new_reg();
    emit_bucket_hash(f, b, key, n_buckets);
    let off = f.new_reg();
    f.bin(BinOp::Mul, off, b, 8i64);
    let base = f.new_reg();
    f.bin(BinOp::Add, base, directory, 8i64);
    f.bin(BinOp::Add, slot, base, Operand::Reg(off));
}

/// The Memcached-like workload.
pub mod memcached {
    use super::*;

    /// Spec: multi-threaded coarse-locked KV cache.
    #[derive(Debug, Clone, Copy)]
    pub struct MemcachedSpec {
        /// Buckets in the hash table.
        pub buckets: u64,
        /// Key range (uniform keys).
        pub key_range: u64,
        /// Set-operation rate in permille (insertion-intensive = 500,
        /// search-intensive = 100).
        pub put_permille: u64,
    }

    impl MemcachedSpec {
        /// The paper's insertion-intensive mix (50% set / 50% get).
        pub fn insertion_intensive() -> Self {
            MemcachedSpec { buckets: 256, key_range: 4096, put_permille: 500 }
        }

        /// The paper's search-intensive mix (10% set / 90% get).
        pub fn search_intensive() -> Self {
            MemcachedSpec { buckets: 256, key_range: 4096, put_permille: 100 }
        }
    }

    impl WorkloadSpec for MemcachedSpec {
        fn name(&self) -> String {
            format!("memcached(put={}‰)", self.put_permille)
        }

        fn build_program(&self) -> Program {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.new_function("worker", 8);
            let lock = f.param(0);
            let directory = f.param(1);
            let x = f.param(2);
            let n_ops = f.param(3);
            let range = f.param(4);
            let n_buckets = f.param(5);
            let put_permille = f.param(6);
            let arena = f.param(7);

            let i = f.new_reg();
            let head = f.new_block();
            let body = f.new_block();
            let cont = f.new_block();
            let exit = f.new_block();

            f.mov(i, 0i64);
            f.jump(head);

            f.switch_to(head);
            let c = f.new_reg();
            f.bin(BinOp::Lt, c, i, n_ops);
            f.branch(c, body, exit);

            f.switch_to(body);
            emit_xorshift(&mut f, x);
            let key = f.new_reg();
            emit_uniform_key(&mut f, key, x, range);
            let sel = f.new_reg();
            let shifted = f.new_reg();
            f.bin(BinOp::Shr, shifted, x, 9i64);
            f.bin(BinOp::And, sel, shifted, 1023i64);
            let is_put = f.new_reg();
            f.bin(BinOp::Lt, is_put, sel, put_permille);
            // Metrics span: kind 1 = get, 2 = put. Opened before the lock
            // so the recorded latency includes queueing behind it.
            let op_kind = f.new_reg();
            f.bin(BinOp::Add, op_kind, is_put, 1i64);
            f.op_begin(op_kind);

            // Whole operation under the global lock (Memcached 1.2.4).
            f.lock(lock);
            // Item bookkeeping and LRU maintenance happen under the lock in
            // Memcached 1.2.4; this is the serialized compute of a real op.
            f.delay(300);
            let slot = f.new_reg();
            emit_bucket_slot(&mut f, slot, directory, key, n_buckets);
            let put_blk = f.new_block();
            let get_blk = f.new_block();
            let unlock_blk = f.new_block();
            f.branch(is_put, put_blk, get_blk);

            f.switch_to(put_blk);
            let (pred_slot, succ, _at) = emit_chain_search(&mut f, slot, key);
            emit_chain_put(&mut f, pred_slot, succ, key, x, arena, unlock_blk);

            f.switch_to(get_blk);
            let (_ps2, succ2, _at2) = emit_chain_search(&mut f, slot, key);
            emit_chain_get(&mut f, succ2, key, unlock_blk);

            f.switch_to(unlock_blk);
            f.unlock(lock);
            f.jump(cont);

            f.switch_to(cont);
            f.op_end(op_kind);
            f.bin(BinOp::Add, i, i, 1i64);
            f.jump(head);

            f.switch_to(exit);
            f.ret(None);
            f.finish().expect("memcached worker verifies");
            pb.finish()
        }

        fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
            let arena = vm.setup(|h, alloc, _| {
                alloc
                    .alloc(h, (threads as u64 * ops * ITEM_BYTES as u64) as usize)
                    .expect("node arena")
            });
            let (buckets, range) = (self.buckets, self.key_range);
            vm.setup(|h, alloc, _| {
                let lock = alloc.alloc(h, 8).expect("lock holder");
                let directory = build_table(h, alloc, buckets, range);
                vec![lock as u64, directory as u64, arena as u64, ops * ITEM_BYTES as u64]
            })
        }

        fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
            let arena = base[2] + thread as u64 * base[3];
            vec![
                base[0],
                base[1],
                0x5DEECE66Du64 + 7919 * thread as u64,
                ops,
                self.key_range,
                self.buckets,
                self.put_permille,
                arena,
            ]
        }

        fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
            verify_table(vm, base[1] as PAddr, total_ops + self.key_range);
        }
    }
}

/// The Redis-like workload.
pub mod redis {
    use super::*;

    /// Spec: single-threaded object store with programmer-delineated
    /// durable regions on the write path.
    #[derive(Debug, Clone, Copy)]
    pub struct RedisSpec {
        /// Buckets (fixed, so larger key ranges mean longer chains — the
        /// paper's "database grows, search dominates" effect).
        pub buckets: u64,
        /// Key range (the paper sweeps 10K / 100K / 1M).
        pub key_range: u64,
        /// Put rate in permille (the lru client issues 80% get / 20% put).
        pub put_permille: u64,
    }

    impl RedisSpec {
        /// A Redis instance over `key_range` keys (buckets fixed at 1024).
        pub fn with_range(key_range: u64) -> Self {
            RedisSpec { buckets: 1024, key_range, put_permille: 200 }
        }
    }

    impl WorkloadSpec for RedisSpec {
        fn name(&self) -> String {
            format!("redis(range={})", self.key_range)
        }

        fn build_program(&self) -> Program {
            let mut pb = ProgramBuilder::new();
            let mut f = pb.new_function("worker", 7);
            let directory = f.param(0);
            let x = f.param(1);
            let n_ops = f.param(2);
            let range = f.param(3);
            let n_buckets = f.param(4);
            let put_permille = f.param(5);
            let arena = f.param(6);

            let i = f.new_reg();
            let head = f.new_block();
            let body = f.new_block();
            let cont = f.new_block();
            let exit = f.new_block();

            f.mov(i, 0i64);
            f.jump(head);

            f.switch_to(head);
            let c = f.new_reg();
            f.bin(BinOp::Lt, c, i, n_ops);
            f.branch(c, body, exit);

            f.switch_to(body);
            // Command dispatch + object handling cost of a real Redis op.
            f.delay(300);
            emit_xorshift(&mut f, x);
            let key = f.new_reg();
            emit_powerlaw_key(&mut f, key, x, range);
            let sel = f.new_reg();
            let shifted = f.new_reg();
            f.bin(BinOp::Shr, shifted, x, 9i64);
            f.bin(BinOp::And, sel, shifted, 1023i64);
            let is_put = f.new_reg();
            f.bin(BinOp::Lt, is_put, sel, put_permille);
            // Metrics span: kind 1 = get, 2 = put.
            let op_kind = f.new_reg();
            f.bin(BinOp::Add, op_kind, is_put, 1i64);
            f.op_begin(op_kind);

            let slot = f.new_reg();
            emit_bucket_slot(&mut f, slot, directory, key, n_buckets);
            let put_blk = f.new_block();
            let get_blk = f.new_block();
            f.branch(is_put, put_blk, get_blk);

            // put: search + mutate inside a durable region — a long FASE
            // with few persistent writes, as the paper describes.
            f.switch_to(put_blk);
            f.durable_begin();
            let (pred_slot, succ, _at) = emit_chain_search(&mut f, slot, key);
            let end_put = f.new_block();
            emit_chain_put(&mut f, pred_slot, succ, key, x, arena, end_put);
            f.switch_to(end_put);
            f.durable_end();
            f.jump(cont);

            // get: persistent reads outside FASEs are allowed (race-free).
            f.switch_to(get_blk);
            let (_ps, succ2, _at2) = emit_chain_search(&mut f, slot, key);
            emit_chain_get(&mut f, succ2, key, cont);

            f.switch_to(cont);
            f.op_end(op_kind);
            f.bin(BinOp::Add, i, i, 1i64);
            f.jump(head);

            f.switch_to(exit);
            f.ret(None);
            f.finish().expect("redis worker verifies");
            pb.finish()
        }

        fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
            let arena = vm.setup(|h, alloc, _| {
                alloc
                    .alloc(h, (threads as u64 * ops * ITEM_BYTES as u64) as usize)
                    .expect("node arena")
            });
            let (buckets, range) = (self.buckets, self.key_range);
            vm.setup(|h, alloc, _| {
                let directory = build_table(h, alloc, buckets, range);
                vec![directory as u64, arena as u64, ops * ITEM_BYTES as u64]
            })
        }

        fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
            let arena = base[1] + thread as u64 * base[2];
            vec![
                base[0],
                0xC0_FFEE_5EEDu64 + 271 * thread as u64,
                ops,
                self.key_range,
                self.buckets,
                self.put_permille,
                arena,
            ]
        }

        fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
            verify_table(vm, base[0] as PAddr, total_ops + self.key_range);
        }
    }
}

fn verify_table(vm: &Vm, directory: PAddr, bound: u64) {
    let mut h = vm.pool().handle();
    let buckets = h.read_u64(directory);
    for i in 0..buckets as usize {
        let mut cur = h.read_u64(directory + 8 + i * 8) as PAddr;
        let mut last = i64::MIN;
        let mut n = 0u64;
        while cur != 0 {
            let k = h.read_u64(cur + 8) as i64;
            assert!(k > last, "bucket {i}: chain keys not strictly increasing");
            last = k;
            n += 1;
            assert!(n <= bound, "bucket {i}: chain too long (cycle?)");
            cur = h.read_u64(cur) as PAddr;
        }
    }
}
