//! Lock-free persistent workloads over the recoverable-CAS family
//! (`Scheme::Nvtraverse` / `Scheme::LfEager`, see `ido-lockfree`).
//!
//! These specs express the NVTraverse-style sorted list and hash map as IR
//! programs, so the full pipeline runs on them: `instrument_lockfree`
//! wraps every `Inst::Cas` with flush-window / prepare / publish runtime
//! ops, the VM executes the recoverable-CAS protocol (both tiers — tier 2
//! deopts at `Cas`, so the tiers agree by construction), and recovery
//! resolves in-flight descriptors instead of resuming FASEs.
//!
//! **Key discipline** (what makes the invariants exact): worker `t`
//! inserts key `(j << 8) | t` for its `j`-th insert, with value
//! `2·key + 1`. Keys are globally unique and per-thread sequential, so
//! after *any* crash + recovery:
//!
//! * the odd-value invariant catches any node whose contents line escaped
//!   unflushed (a zeroed or torn node has an even/wrong value);
//! * thread `t`'s keys present in the structure must be *exactly*
//!   `0..done(t)` — its first `done(t)` inserts, where `done(t)` is the
//!   durable success counter in its recoverable-CAS descriptor. A missing
//!   key is a lost effect, an extra key a duplicated/phantom effect, and
//!   either panics the verifier. This is the linearizability obligation
//!   of ISSUE 9 reduced to a checkable per-thread prefix property.

use ido_ir::{BinOp, FunctionBuilder, Operand, Program, ProgramBuilder, Reg};
use ido_lockfree::{align64, LfState, NvtList, NvtMap, NODE_BYTES, NODE_KEY, NODE_NEXT, NODE_NEXT_TAG, NODE_VAL};
use ido_nvm::{PAddr, PmemHandle};
use ido_vm::{Vm, THREADS_ROOT};

use crate::harness::WorkloadSpec;
use crate::util::{emit_bucket_hash, emit_xorshift};

/// Emits a lock-free sorted-list insert of `key`/`val` into the chain
/// anchored at the sentinel node in `head`. Allocates a 64-byte node from
/// `arena` (the arena base is line-aligned and slots are 64 B, so every
/// node is line-aligned — the cell `[next, tag]` pair must share a line
/// for the recoverable-CAS tag witness to be sound), initializes it, then
/// loops: traverse to the insertion point, link, CAS the predecessor's
/// next cell. A failed CAS (a racing insert changed the predecessor)
/// retries from the head. Keys are unique by construction, so there is no
/// duplicate path. Control continues at `cont` once the CAS is taken.
fn emit_lf_insert(
    f: &mut FunctionBuilder<'_>,
    head: Reg,
    key: Reg,
    val: Reg,
    arena: Reg,
    cont: ido_ir::BlockId,
) {
    let retry = f.new_block();
    let walk = f.new_block();
    let chk = f.new_block();
    let step = f.new_block();
    let at_pos = f.new_block();

    let node = f.new_reg();
    crate::util::emit_arena_take(f, node, arena, NODE_BYTES as i64);
    f.store(node, NODE_KEY as i64, Operand::Reg(key));
    f.store(node, NODE_VAL as i64, Operand::Reg(val));
    f.store(node, NODE_NEXT_TAG as i64, 0i64);
    f.jump(retry);

    f.switch_to(retry);
    let pred = f.new_reg();
    let cur = f.new_reg();
    f.mov(pred, Operand::Reg(head));
    f.load(cur, pred, NODE_NEXT as i64);
    f.jump(walk);

    // walk: stop at end-of-chain or at the first key >= ours.
    f.switch_to(walk);
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, cur, 0i64);
    f.branch(is_end, at_pos, chk);

    f.switch_to(chk);
    let ck = f.new_reg();
    f.load(ck, cur, NODE_KEY as i64);
    let ge = f.new_reg();
    f.bin(BinOp::Ge, ge, ck, key);
    f.branch(ge, at_pos, step);

    f.switch_to(step);
    f.mov(pred, Operand::Reg(cur));
    f.load(cur, pred, NODE_NEXT as i64);
    f.jump(walk);

    // at_pos: link the node, then the critical write. Instrumentation
    // inserts LfFlushWindow + LfCasPrepare immediately before the Cas
    // (persisting the node contents and every traversed line first) and
    // LfCasPublish immediately after.
    f.switch_to(at_pos);
    f.store(node, NODE_NEXT as i64, Operand::Reg(cur));
    let taken = f.new_reg();
    f.cas(taken, pred, NODE_NEXT as i64, Operand::Reg(cur), Operand::Reg(node));
    f.branch(taken, cont, retry);
}

/// Emits a lock-free lookup of `key` in the chain anchored at `head`:
/// walk to the first key >= ours, load the value on a hit. Loads are
/// tracked into the flush window under NVTraverse (and flushed by the
/// next CAS's window flush), untracked under LF-Eager.
fn emit_lf_lookup(f: &mut FunctionBuilder<'_>, head: Reg, key: Reg, cont: ido_ir::BlockId) {
    let walk = f.new_block();
    let chk = f.new_block();
    let step = f.new_block();
    let at = f.new_block();
    let hit = f.new_block();

    let cur = f.new_reg();
    f.load(cur, head, NODE_NEXT as i64);
    f.jump(walk);

    f.switch_to(walk);
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, cur, 0i64);
    f.branch(is_end, cont, chk);

    f.switch_to(chk);
    let ck = f.new_reg();
    f.load(ck, cur, NODE_KEY as i64);
    let ge = f.new_reg();
    f.bin(BinOp::Ge, ge, ck, key);
    f.branch(ge, at, step);

    f.switch_to(step);
    f.load(cur, cur, NODE_NEXT as i64);
    f.jump(walk);

    f.switch_to(at);
    let eq = f.new_reg();
    f.bin(BinOp::Eq, eq, ck, key);
    f.branch(eq, hit, cont);

    f.switch_to(hit);
    let v = f.new_reg();
    f.load(v, cur, NODE_VAL as i64);
    f.jump(cont);
}

/// Allocates a line-aligned per-run node arena: `threads × ops` 64-byte
/// slots. Separate from `micro::alloc_arena` because lock-free nodes
/// *must* start on a cache-line boundary (the over-allocated alignment
/// padding is leaked, mirroring `NvtList::alloc_node` — see DESIGN.md
/// §13's caveats).
fn alloc_lf_arena(h: &mut PmemHandle, alloc: &ido_nvm::alloc::NvAllocator, threads: usize, ops: u64) -> PAddr {
    let total = threads as u64 * ops * NODE_BYTES as u64;
    let raw = alloc.alloc(h, total as usize + 64).expect("lock-free node arena");
    align64(raw)
}

/// Walks every chain of the structure, enforcing the odd-value invariant,
/// and checks that each registered thread's present keys are exactly its
/// first `done(t)` inserts (see the module docs). `chains` yields each
/// chain's sentinel.
fn check_prefix_invariant(vm: &Vm, chains: &[PAddr], bound: usize) {
    let mut h = vm.pool().handle();
    let st: LfState = vm.lf_state().expect("lock-free scheme must carry lf_state");
    let roots = ido_nvm::root::RootTable;
    let registry = roots.root(&mut h, THREADS_ROOT).expect("thread registry");
    let threads = h.read_u64(registry) as usize;

    // Collect (thread, seq) per present key across all chains.
    let mut per: Vec<Vec<u64>> = vec![Vec::new(); threads];
    let mut total = 0usize;
    for &sentinel in chains {
        let mut cur = h.read_u64(sentinel + NODE_NEXT) as PAddr;
        while cur != 0 {
            total += 1;
            assert!(total <= bound, "structure holds more than {bound} keys: phantom inserts");
            let key = h.read_u64(cur + NODE_KEY);
            let val = h.read_u64(cur + NODE_VAL);
            assert_eq!(
                val,
                2 * key + 1,
                "node {cur:#x} key {key}: value {val} escaped before its contents \
                 line was persisted"
            );
            let t = (key & 0xFF) as usize;
            assert!(t < threads, "key {key:#x} claims unregistered thread {t}");
            per[t].push(key >> 8);
            cur = h.read_u64(cur + NODE_NEXT) as PAddr;
        }
    }

    let mut done_total = 0u64;
    for (t, seqs) in per.iter_mut().enumerate() {
        let done = st.done_count(&mut h, t as u32);
        done_total += done;
        seqs.sort_unstable();
        let want: Vec<u64> = (0..done).collect();
        assert_eq!(
            *seqs, want,
            "thread {t}: present keys must be exactly its first {done} \
             durably-taken inserts (missing = lost effect, extra = duplicated)"
        );
    }
    assert_eq!(total as u64, done_total, "chain population vs durable success counters");
}

// ---------------------------------------------------------------------
// Sorted list
// ---------------------------------------------------------------------

/// Insert-only lock-free sorted list: thread `t`'s `i`-th op inserts key
/// `(i << 8) | t` with value `2·key + 1`.
#[derive(Debug, Clone, Copy, Default)]
pub struct LfListSpec;

impl WorkloadSpec for LfListSpec {
    fn name(&self) -> String {
        "lf-list".into()
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 4);
        let head = f.param(0);
        let tid = f.param(1);
        let n_ops = f.param(2);
        let arena = f.param(3);

        let i = f.new_reg();
        let loop_head = f.new_block();
        let body = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(loop_head);

        f.switch_to(loop_head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        let key = f.new_reg();
        f.bin(BinOp::Shl, key, i, 8i64);
        f.bin(BinOp::Or, key, key, tid);
        let val = f.new_reg();
        f.bin(BinOp::Mul, val, key, 2i64);
        f.bin(BinOp::Add, val, val, 1i64);
        emit_lf_insert(&mut f, head, key, val, arena, cont);

        f.switch_to(cont);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(loop_head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("lf-list worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        vm.setup(|h, alloc, _| {
            let list = NvtList::create(h, alloc).expect("lf list");
            let arena = alloc_lf_arena(h, alloc, threads, ops);
            vec![list.head as u64, arena as u64, ops * NODE_BYTES as u64]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[1] + thread as u64 * base[2];
        vec![base[0], thread as u64, ops, arena]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let list = NvtList::attach(base[0] as PAddr);
        // Structural pass: alignment, strict ordering, cycle bound.
        list.check_invariants(&mut h, total_ops as usize);
        drop(h);
        // Semantic pass: per-thread durable-prefix exactness.
        check_prefix_invariant(vm, &[base[0] as PAddr], total_ops as usize);
    }
}

// ---------------------------------------------------------------------
// Hash map
// ---------------------------------------------------------------------

/// Lock-free hash map with a configurable get/put mix. Puts insert
/// per-thread sequential keys `(seq << 8) | t` (never colliding, so the
/// durable-prefix invariant stays exact even though the op mix is
/// random); gets draw uniform keys over the scaled key space and walk
/// their home bucket.
#[derive(Debug, Clone, Copy)]
pub struct LfMapSpec {
    /// Number of buckets.
    pub buckets: u64,
    /// Key range for lookups (scaled by 256 to cover the encoded space).
    pub key_range: u64,
    /// Puts per 1000 operations; the rest are gets.
    pub put_permille: u64,
}

impl Default for LfMapSpec {
    fn default() -> Self {
        LfMapSpec { buckets: 16, key_range: 128, put_permille: 500 }
    }
}

impl WorkloadSpec for LfMapSpec {
    fn name(&self) -> String {
        format!(
            "lf-map(buckets={},range={},put={}‰)",
            self.buckets, self.key_range, self.put_permille
        )
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 8);
        let dir = f.param(0); // [n_buckets][head_0]...
        let tid = f.param(1);
        let n_ops = f.param(2);
        let x = f.param(3);
        let n_buckets = f.param(4);
        let range_scaled = f.param(5); // key_range << 8
        let put_pm = f.param(6);
        let arena = f.param(7);

        let i = f.new_reg();
        let seq = f.new_reg();
        let loop_head = f.new_block();
        let body = f.new_block();
        let put_path = f.new_block();
        let get_path = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.mov(seq, 0i64);
        f.jump(loop_head);

        f.switch_to(loop_head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        emit_xorshift(&mut f, x);
        // op kind: ((x >> 3) mod 1000) < put_permille
        let r = f.new_reg();
        f.bin(BinOp::Shr, r, x, 3i64);
        let rm = f.new_reg();
        f.bin(BinOp::And, rm, r, 0x7FFF_FFFFi64);
        let pm = f.new_reg();
        f.bin(BinOp::Rem, pm, rm, 1000i64);
        let is_put = f.new_reg();
        f.bin(BinOp::Lt, is_put, pm, put_pm);
        f.branch(is_put, put_path, get_path);

        // put: key = (seq << 8) | tid, advancing the per-thread sequence.
        f.switch_to(put_path);
        let pkey = f.new_reg();
        f.bin(BinOp::Shl, pkey, seq, 8i64);
        f.bin(BinOp::Or, pkey, pkey, tid);
        f.bin(BinOp::Add, seq, seq, 1i64);
        let pval = f.new_reg();
        f.bin(BinOp::Mul, pval, pkey, 2i64);
        f.bin(BinOp::Add, pval, pval, 1i64);
        let pb_ = f.new_reg();
        emit_bucket_hash(&mut f, pb_, pkey, n_buckets);
        let poff = f.new_reg();
        f.bin(BinOp::Mul, poff, pb_, 8i64);
        let pslot = f.new_reg();
        f.bin(BinOp::Add, pslot, dir, Operand::Reg(poff));
        let phead = f.new_reg();
        f.load(phead, pslot, 8);
        emit_lf_insert(&mut f, phead, pkey, pval, arena, cont);

        // get: uniform key over the scaled space, decorrelated bits.
        f.switch_to(get_path);
        let gkey = f.new_reg();
        let gr = f.new_reg();
        f.bin(BinOp::Shr, gr, x, 13i64);
        let grm = f.new_reg();
        f.bin(BinOp::And, grm, gr, 0x7FFF_FFFFi64);
        f.bin(BinOp::Rem, gkey, grm, range_scaled);
        let gb = f.new_reg();
        emit_bucket_hash(&mut f, gb, gkey, n_buckets);
        let goff = f.new_reg();
        f.bin(BinOp::Mul, goff, gb, 8i64);
        let gslot = f.new_reg();
        f.bin(BinOp::Add, gslot, dir, Operand::Reg(goff));
        let ghead = f.new_reg();
        f.load(ghead, gslot, 8);
        emit_lf_lookup(&mut f, ghead, gkey, cont);

        f.switch_to(cont);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(loop_head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("lf-map worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let buckets = self.buckets;
        vm.setup(|h, alloc, _| {
            let map = NvtMap::create(h, alloc, buckets as u32).expect("lf map");
            let arena = alloc_lf_arena(h, alloc, threads, ops);
            vec![map.dir as u64, arena as u64, ops * NODE_BYTES as u64]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[1] + thread as u64 * base[2];
        vec![
            base[0],
            thread as u64,
            ops,
            0xC0FF_EE00u64 + 977 * thread as u64,
            self.buckets,
            self.key_range << 8,
            self.put_permille,
            arena,
        ]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let map = NvtMap::attach(&mut h, base[0] as PAddr);
        // Structural pass: per-bucket ordering/alignment + home-bucket
        // placement (recomputes the Fibonacci hash natively — this is
        // what pins the IR hash emitter to `NvtMap::bucket_of`).
        map.check_invariants(&mut h, total_ops as usize);
        let chains: Vec<PAddr> =
            (0..map.buckets()).map(|b| map.bucket(&mut h, b).head).collect();
        drop(h);
        check_prefix_invariant(vm, &chains, total_ops as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_workload;
    use crate::micro::HohMapMixSpec;
    use ido_compiler::{instrument_program, Scheme};
    use ido_nvm::PoolConfig;
    use ido_vm::{ExecTier, RunOutcome, SchedPolicy, VmConfig};

    fn small_config(tier: ExecTier) -> VmConfig {
        VmConfig {
            pool: PoolConfig { size: 8 << 20, ..PoolConfig::default() },
            tier,
            ..VmConfig::default()
        }
    }

    /// Completed runs must leave *exactly* ops-per-thread durable
    /// successes per thread — run manually (not via `run_workload`) so
    /// the post-completion exactness holds on top of the prefix
    /// invariant `verify` enforces.
    #[test]
    fn lf_list_inserts_exactly_under_both_schemes_and_tiers() {
        for scheme in Scheme::LOCKFREE {
            for tier in [ExecTier::Tier1, ExecTier::Tier2] {
                let spec = LfListSpec;
                let (threads, ops) = (3usize, 8u64);
                let program =
                    instrument_program(spec.build_program(), scheme).expect("instruments");
                let mut config = small_config(tier);
                config.sched = SchedPolicy::MinClock;
                let mut vm = Vm::new(program, config);
                let base = spec.setup(&mut vm, threads, ops);
                for t in 0..threads {
                    vm.spawn("worker", &spec.worker_args(&base, t, ops));
                }
                assert_eq!(vm.run(), RunOutcome::Completed, "{scheme}/{tier:?}");
                let total = threads as u64 * ops;
                spec.verify(&vm, &base, total);
                let st = vm.lf_state().expect("lf_state");
                let mut h = vm.pool().handle();
                for t in 0..threads {
                    assert_eq!(
                        st.done_count(&mut h, t as u32),
                        ops,
                        "{scheme}/{tier:?} thread {t}: completed run must close \
                         every insert"
                    );
                }
            }
        }
    }

    #[test]
    fn lf_map_mixed_ops_verify_under_both_schemes_and_tiers() {
        let spec = LfMapSpec { buckets: 8, key_range: 64, put_permille: 600 };
        for scheme in Scheme::LOCKFREE {
            for tier in [ExecTier::Tier1, ExecTier::Tier2] {
                let stats = run_workload(scheme, &spec, 3, 12, small_config(tier));
                assert_eq!(stats.total_ops, 36, "{scheme}/{tier:?}");
                assert!(stats.sim_ns > 0);
            }
        }
    }

    /// The two tiers must agree on persistence behavior, not just results:
    /// `Inst::Cas` is non-fusible, so tier 2 deopts into the same
    /// interpreter path and the persist-event counts match exactly.
    #[test]
    fn tiers_agree_on_persist_event_counts() {
        for scheme in Scheme::LOCKFREE {
            let spec = LfMapSpec { buckets: 4, key_range: 32, put_permille: 500 };
            let t1 = run_workload(scheme, &spec, 2, 10, small_config(ExecTier::Tier1));
            let t2 = run_workload(scheme, &spec, 2, 10, small_config(ExecTier::Tier2));
            assert_eq!(
                t1.mem_stats.clwbs, t2.mem_stats.clwbs,
                "{scheme}: tier write-back divergence"
            );
            assert_eq!(
                t1.mem_stats.fences, t2.mem_stats.fences,
                "{scheme}: tier fence divergence"
            );
        }
    }

    /// The lock-based comparator runs the same mix shape under iDO — the
    /// pairing `lockfree_bench` sweeps.
    #[test]
    fn hoh_map_mix_runs_under_ido_and_baselines() {
        let spec = HohMapMixSpec { buckets: 8, key_range: 64, put_permille: 600 };
        for scheme in [Scheme::Ido, Scheme::Atlas, Scheme::JustDo] {
            let stats = run_workload(scheme, &spec, 2, 20, small_config(ExecTier::Tier1));
            assert_eq!(stats.total_ops, 40, "{scheme}");
        }
    }
}
