//! The four microbenchmark workloads of Section V-B, as IR programs.
//!
//! Each builder produces a program with a single `worker` function that
//! performs `n_ops` randomly chosen operations on a shared structure, using
//! a thread-local xorshift generator — mirroring the JUSTDO paper's
//! stress-test methodology the iDO paper reuses. Nodes come from
//! pre-allocated per-thread arenas (and popped nodes are abandoned, not
//! freed), so the hot paths measure the persistence runtimes rather than
//! the allocator. The structures allow increasing degrees of parallelism:
//!
//! * [`StackSpec`] — one lock, tiny critical sections (serializes);
//! * [`QueueSpec`] — two locks (M&S), enqueue/dequeue overlap;
//! * [`ListSpec`] — hand-over-hand per-node locks (threads pipeline);
//! * [`MapSpec`] — hash of hand-over-hand lists (near-linear scaling).

use ido_ir::{BinOp, BlockId, FunctionBuilder, Operand, Program, ProgramBuilder, Reg};
use ido_nvm::alloc::NvAllocator;
use ido_nvm::{PmemHandle, PAddr};
use ido_vm::Vm;

use crate::harness::WorkloadSpec;
use crate::util::{emit_arena_take, emit_bucket_hash, emit_uniform_key, emit_xorshift};

// Node field offsets shared by the list-based structures:
// [next][key][value][lock_holder]
const NEXT: i64 = 0;
const KEY: i64 = 8;
const VAL: i64 = 16;
const HOLDER: i64 = 24;

/// Builds a sorted-chain node via direct pool access (setup-time only).
fn build_node(
    h: &mut PmemHandle,
    alloc: &NvAllocator,
    key: i64,
    value: u64,
    next: PAddr,
) -> PAddr {
    let node = alloc.alloc(h, 32).expect("setup node");
    let holder = alloc.alloc(h, 8).expect("setup holder");
    h.write_u64(node, next as u64);
    h.write_u64(node + 8, key as u64);
    h.write_u64(node + 16, value);
    h.write_u64(node + 24, holder as u64);
    h.persist(node, 32);
    node
}

/// Builds a sorted chain holding every even key in `0..range` and returns
/// the sentinel (key −1).
fn build_sorted_chain(h: &mut PmemHandle, alloc: &NvAllocator, range: u64) -> PAddr {
    let mut next = 0;
    let mut k = range as i64 - 1;
    while k >= 0 {
        if k % 2 == 0 {
            next = build_node(h, alloc, k, (k as u64) << 1, next);
        }
        k -= 1;
    }
    build_node(h, alloc, -1, 0, next)
}

fn alloc_arena(vm: &mut Vm, threads: usize, ops: u64, bytes_per_op: u64) -> PAddr {
    let total = threads as u64 * ops * bytes_per_op;
    vm.setup(|h, alloc, _| alloc.alloc(h, total as usize).expect("node arena"))
}

// ---------------------------------------------------------------------
// Stack
// ---------------------------------------------------------------------

/// The locked Treiber stack workload: 50% push / 50% pop.
#[derive(Debug, Clone, Copy, Default)]
pub struct StackSpec;

impl WorkloadSpec for StackSpec {
    fn name(&self) -> String {
        "stack".into()
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 5);
        let lock = f.param(0);
        let header = f.param(1);
        let x = f.param(2);
        let n_ops = f.param(3);
        let arena = f.param(4);
        let i = f.new_reg();

        let head = f.new_block();
        let body = f.new_block();
        let push_blk = f.new_block();
        let pop_blk = f.new_block();
        let pop_do = f.new_block();
        let pop_empty = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(head);

        f.switch_to(head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        emit_xorshift(&mut f, x);
        let bit = f.new_reg();
        f.bin(BinOp::And, bit, x, 8i64);
        f.branch(bit, push_blk, pop_blk);

        // push: node from the arena, prepared outside the critical section.
        f.switch_to(push_blk);
        let node = f.new_reg();
        emit_arena_take(&mut f, node, arena, 16);
        f.store(node, 8, Operand::Reg(x));
        f.lock(lock);
        let h = f.new_reg();
        f.load(h, header, 0);
        f.store(node, 0, Operand::Reg(h));
        f.store(header, 0, Operand::Reg(node));
        f.unlock(lock);
        f.jump(cont);

        // pop (the node is abandoned, not freed: stress-test reclamation)
        f.switch_to(pop_blk);
        f.lock(lock);
        let h2 = f.new_reg();
        f.load(h2, header, 0);
        f.branch(h2, pop_do, pop_empty);

        f.switch_to(pop_do);
        let nx = f.new_reg();
        f.load(nx, h2, 0);
        f.store(header, 0, Operand::Reg(nx));
        f.unlock(lock);
        f.jump(cont);

        f.switch_to(pop_empty);
        f.unlock(lock);
        f.jump(cont);

        f.switch_to(cont);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("stack worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let arena = alloc_arena(vm, threads, ops, 16);
        vm.setup(|h, alloc, _| {
            let lock = alloc.alloc(h, 8).expect("lock holder");
            let header = alloc.alloc(h, 8).expect("header");
            h.write_u64(header, 0);
            h.persist(header, 8);
            vec![lock as u64, header as u64, arena as u64, ops * 16]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[2] + thread as u64 * base[3];
        vec![base[0], base[1], 0x9E3779B9u64 + 977 * thread as u64, ops, arena]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let mut cur = h.read_u64(base[1] as PAddr) as PAddr;
        let mut n: u64 = 0;
        while cur != 0 {
            n += 1;
            assert!(n <= total_ops, "stack chain longer than total pushes: cycle");
            cur = h.read_u64(cur) as PAddr;
        }
    }
}

// ---------------------------------------------------------------------
// Queue
// ---------------------------------------------------------------------

/// The two-lock Michael–Scott queue workload: 50% enqueue / 50% dequeue.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueSpec;

impl WorkloadSpec for QueueSpec {
    fn name(&self) -> String {
        "queue".into()
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 6);
        let enq_lock = f.param(0);
        let deq_lock = f.param(1);
        let header = f.param(2); // [head, tail]
        let x = f.param(3);
        let n_ops = f.param(4);
        let arena = f.param(5);
        let i = f.new_reg();

        let head = f.new_block();
        let body = f.new_block();
        let enq = f.new_block();
        let deq = f.new_block();
        let deq_do = f.new_block();
        let deq_empty = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(head);

        f.switch_to(head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        emit_xorshift(&mut f, x);
        let bit = f.new_reg();
        f.bin(BinOp::And, bit, x, 8i64);
        f.branch(bit, enq, deq);

        // enqueue: node prepared before the critical section (M&S).
        f.switch_to(enq);
        let node = f.new_reg();
        emit_arena_take(&mut f, node, arena, 16);
        f.store(node, 0, 0i64);
        f.store(node, 8, Operand::Reg(x));
        f.lock(enq_lock);
        let t = f.new_reg();
        f.load(t, header, 8);
        f.store(t, 0, Operand::Reg(node));
        f.store(header, 8, Operand::Reg(node));
        f.unlock(enq_lock);
        f.jump(cont);

        // dequeue
        f.switch_to(deq);
        f.lock(deq_lock);
        let hd = f.new_reg();
        f.load(hd, header, 0);
        let nx = f.new_reg();
        f.load(nx, hd, 0);
        f.branch(nx, deq_do, deq_empty);

        f.switch_to(deq_do);
        let v = f.new_reg();
        f.load(v, nx, 8);
        f.store(header, 0, Operand::Reg(nx));
        f.unlock(deq_lock);
        f.jump(cont);

        f.switch_to(deq_empty);
        f.unlock(deq_lock);
        f.jump(cont);

        f.switch_to(cont);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("queue worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let arena = alloc_arena(vm, threads, ops, 16);
        vm.setup(|h, alloc, _| {
            let enq_lock = alloc.alloc(h, 8).expect("enq lock");
            let deq_lock = alloc.alloc(h, 8).expect("deq lock");
            let header = alloc.alloc(h, 16).expect("header");
            let dummy = alloc.alloc(h, 16).expect("dummy");
            h.write_u64(dummy, 0);
            h.write_u64(header, dummy as u64);
            h.write_u64(header + 8, dummy as u64);
            h.persist(dummy, 16);
            h.persist(header, 16);
            vec![enq_lock as u64, deq_lock as u64, header as u64, arena as u64, ops * 16]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[3] + thread as u64 * base[4];
        vec![base[0], base[1], base[2], 0xABCD_EF01u64 + 31 * thread as u64, ops, arena]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let header = base[2] as PAddr;
        let tail = h.read_u64(header + 8) as PAddr;
        let mut cur = h.read_u64(header) as PAddr;
        let mut saw_tail = cur == tail;
        let mut n = 0u64;
        loop {
            let next = h.read_u64(cur) as PAddr;
            if next == 0 {
                break;
            }
            n += 1;
            assert!(n <= total_ops + 1, "queue chain too long: cycle");
            cur = next;
            saw_tail |= cur == tail;
        }
        assert!(saw_tail, "queue tail unreachable from head");
    }
}

// ---------------------------------------------------------------------
// Hand-over-hand list body (shared by list and map)
// ---------------------------------------------------------------------

/// Emits the hand-over-hand get/put operation body. On entry the current
/// block must be positioned where the op starts; `sentinel` holds the
/// bucket's sentinel node address, `key` the target key, `x` the value to
/// put, `opbit` selects put (nonzero) or get, and `arena` is the node
/// arena cursor. Control continues at `cont`.
fn emit_hoh_op(
    f: &mut FunctionBuilder<'_>,
    sentinel: Reg,
    key: Reg,
    x: Reg,
    opbit: Reg,
    arena: Reg,
    cont: BlockId,
) {
    let walk = f.new_block();
    let step = f.new_block();
    let at_pos = f.new_block();
    let get_path = f.new_block();
    let get_check = f.new_block();
    let get_found = f.new_block();
    let put_path = f.new_block();
    let put_check = f.new_block();
    let update = f.new_block();
    let insert = f.new_block();
    let done = f.new_block();

    // Acquire the sentinel's lock; the FASE begins here.
    let pred = f.new_reg();
    let predh = f.new_reg();
    f.mov(pred, Operand::Reg(sentinel));
    f.load(predh, pred, HOLDER);
    f.lock(predh);
    f.jump(walk);

    // walk: stop when succ == 0 or succ.key >= key
    f.switch_to(walk);
    let succ = f.new_reg();
    f.load(succ, pred, NEXT);
    let is_end = f.new_reg();
    f.bin(BinOp::Eq, is_end, succ, 0i64);
    let go_pos = f.new_block();
    f.branch(is_end, at_pos, go_pos);
    f.switch_to(go_pos);
    let sk = f.new_reg();
    f.load(sk, succ, KEY);
    let ge = f.new_reg();
    f.bin(BinOp::Ge, ge, sk, key);
    f.branch(ge, at_pos, step);

    // step: hand-over-hand — lock successor, release predecessor.
    f.switch_to(step);
    let succh = f.new_reg();
    f.load(succh, succ, HOLDER);
    f.lock(succh);
    f.unlock(predh);
    f.mov(pred, Operand::Reg(succ));
    f.mov(predh, Operand::Reg(succh));
    f.jump(walk);

    f.switch_to(at_pos);
    f.branch(opbit, put_path, get_path);

    // get
    f.switch_to(get_path);
    let is_end2 = f.new_reg();
    f.bin(BinOp::Eq, is_end2, succ, 0i64);
    f.branch(is_end2, done, get_check);
    f.switch_to(get_check);
    let sk2 = f.new_reg();
    f.load(sk2, succ, KEY);
    let eq = f.new_reg();
    f.bin(BinOp::Eq, eq, sk2, key);
    f.branch(eq, get_found, done);
    f.switch_to(get_found);
    let gh = f.new_reg();
    f.load(gh, succ, HOLDER);
    f.lock(gh);
    let v = f.new_reg();
    f.load(v, succ, VAL);
    f.unlock(gh);
    f.jump(done);

    // put
    f.switch_to(put_path);
    let is_end3 = f.new_reg();
    f.bin(BinOp::Eq, is_end3, succ, 0i64);
    f.branch(is_end3, insert, put_check);
    f.switch_to(put_check);
    let sk3 = f.new_reg();
    f.load(sk3, succ, KEY);
    let eq2 = f.new_reg();
    f.bin(BinOp::Eq, eq2, sk3, key);
    f.branch(eq2, update, insert);

    f.switch_to(update);
    let uh = f.new_reg();
    f.load(uh, succ, HOLDER);
    f.lock(uh);
    f.store(succ, VAL, Operand::Reg(x));
    f.unlock(uh);
    f.jump(done);

    f.switch_to(insert);
    // node (32 B) and its lock-holder cell (8 B) share one arena slot.
    let node = f.new_reg();
    emit_arena_take(f, node, arena, 40);
    let holder = f.new_reg();
    f.bin(BinOp::Add, holder, node, 32i64);
    f.store(node, NEXT, Operand::Reg(succ));
    f.store(node, KEY, Operand::Reg(key));
    f.store(node, VAL, Operand::Reg(x));
    f.store(node, HOLDER, Operand::Reg(holder));
    f.store(pred, NEXT, Operand::Reg(node));
    f.jump(done);

    // done: release the final predecessor lock; FASE ends.
    f.switch_to(done);
    f.unlock(predh);
    f.jump(cont);
}

fn emit_worker_loop(
    f: &mut FunctionBuilder<'_>,
    x: Reg,
    n_ops: Reg,
    emit_op: impl FnOnce(&mut FunctionBuilder<'_>, BlockId),
) {
    let i = f.new_reg();
    let head = f.new_block();
    let body = f.new_block();
    let cont = f.new_block();
    let exit = f.new_block();

    f.mov(i, 0i64);
    f.jump(head);

    f.switch_to(head);
    let c = f.new_reg();
    f.bin(BinOp::Lt, c, i, n_ops);
    f.branch(c, body, exit);

    f.switch_to(body);
    emit_xorshift(f, x);
    emit_op(f, cont);

    f.switch_to(cont);
    f.bin(BinOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.ret(None);
}

// ---------------------------------------------------------------------
// Ordered list
// ---------------------------------------------------------------------

/// The hand-over-hand ordered list workload: 50% get / 50% put over a
/// fixed key range.
#[derive(Debug, Clone, Copy)]
pub struct ListSpec {
    /// Key range (the paper uses a fixed range; half is pre-populated).
    pub key_range: u64,
}

impl Default for ListSpec {
    fn default() -> Self {
        ListSpec { key_range: 64 }
    }
}

impl WorkloadSpec for ListSpec {
    fn name(&self) -> String {
        format!("ordered-list(range={})", self.key_range)
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 5);
        let sentinel = f.param(0);
        let x = f.param(1);
        let n_ops = f.param(2);
        let range = f.param(3);
        let arena = f.param(4);
        emit_worker_loop(&mut f, x, n_ops, |f, cont| {
            let key = f.new_reg();
            emit_uniform_key(f, key, x, range);
            let opbit = f.new_reg();
            f.bin(BinOp::And, opbit, x, 16i64);
            emit_hoh_op(f, sentinel, key, x, opbit, arena, cont);
        });
        f.finish().expect("list worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let arena = alloc_arena(vm, threads, ops, 40);
        let range = self.key_range;
        vm.setup(|h, alloc, _| {
            let sentinel = build_sorted_chain(h, alloc, range);
            vec![sentinel as u64, arena as u64, ops * 40]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[1] + thread as u64 * base[2];
        vec![base[0], 0x1234_5678u64 + 101 * thread as u64, ops, self.key_range, arena]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        verify_sorted_chain(&mut h, base[0] as PAddr, total_ops + self.key_range);
    }
}

fn verify_sorted_chain(h: &mut PmemHandle, sentinel: PAddr, bound: u64) {
    let mut last = i64::MIN;
    let mut cur = sentinel;
    let mut n = 0u64;
    while cur != 0 {
        let k = h.read_u64(cur + 8) as i64;
        assert!(k > last || cur == sentinel, "chain keys not strictly increasing");
        last = k;
        n += 1;
        assert!(n <= bound + 2, "chain too long: cycle suspected");
        cur = h.read_u64(cur) as PAddr;
    }
}

// ---------------------------------------------------------------------
// Hash map
// ---------------------------------------------------------------------

/// The fixed-size hash map workload: 50% get / 50% put; each bucket is a
/// hand-over-hand ordered list, so cross-bucket operations never contend.
#[derive(Debug, Clone, Copy)]
pub struct MapSpec {
    /// Number of buckets.
    pub buckets: u64,
    /// Key range.
    pub key_range: u64,
}

impl Default for MapSpec {
    fn default() -> Self {
        MapSpec { buckets: 64, key_range: 1024 }
    }
}

impl WorkloadSpec for MapSpec {
    fn name(&self) -> String {
        format!("hash-map(buckets={},range={})", self.buckets, self.key_range)
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 6);
        let directory = f.param(0); // [n_buckets][sentinel_0]...
        let x = f.param(1);
        let n_ops = f.param(2);
        let range = f.param(3);
        let n_buckets = f.param(4);
        let arena = f.param(5);
        emit_worker_loop(&mut f, x, n_ops, |f, cont| {
            let key = f.new_reg();
            emit_uniform_key(f, key, x, range);
            let b = f.new_reg();
            emit_bucket_hash(f, b, key, n_buckets);
            // sentinel = directory[1 + b]
            let off = f.new_reg();
            f.bin(BinOp::Mul, off, b, 8i64);
            let slot = f.new_reg();
            f.bin(BinOp::Add, slot, directory, Operand::Reg(off));
            let sentinel = f.new_reg();
            f.load(sentinel, slot, 8);
            let opbit = f.new_reg();
            f.bin(BinOp::And, opbit, x, 16i64);
            emit_hoh_op(f, sentinel, key, x, opbit, arena, cont);
        });
        f.finish().expect("map worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let arena = alloc_arena(vm, threads, ops, 40);
        let buckets = self.buckets;
        vm.setup(|h, alloc, _| {
            let directory = alloc.alloc(h, 8 + buckets as usize * 8).expect("directory");
            h.write_u64(directory, buckets);
            for i in 0..buckets as usize {
                // Buckets start with just a sentinel; population happens
                // through the workload itself.
                let sentinel = build_node(h, alloc, -1, 0, 0);
                h.write_u64(directory + 8 + i * 8, sentinel as u64);
            }
            h.persist(directory, 8 + buckets as usize * 8);
            vec![directory as u64, arena as u64, ops * 40]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[1] + thread as u64 * base[2];
        vec![
            base[0],
            0xFEED_BEEFu64 + 313 * thread as u64,
            ops,
            self.key_range,
            self.buckets,
            arena,
        ]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let directory = base[0] as PAddr;
        let n = h.read_u64(directory);
        for i in 0..n as usize {
            let sentinel = h.read_u64(directory + 8 + i * 8) as PAddr;
            verify_sorted_chain(&mut h, sentinel, total_ops + 1);
        }
    }
}

/// The hand-over-hand hash map with a *configurable* get/put mix — the
/// lock-delineated comparator for the lock-free contention benchmark
/// (`lockfree_bench`). Identical to [`MapSpec`] except the op choice is a
/// permille draw instead of the fixed 50/50 bit, so the same read/write
/// mixes can be applied to both the iDO-instrumented lock-based map and
/// the recoverable-CAS map. Kept separate so [`MapSpec`]'s program (and
/// the goldens derived from it) stays byte-stable.
#[derive(Debug, Clone, Copy)]
pub struct HohMapMixSpec {
    /// Number of buckets.
    pub buckets: u64,
    /// Key range.
    pub key_range: u64,
    /// Puts per 1000 operations; the rest are gets.
    pub put_permille: u64,
}

impl WorkloadSpec for HohMapMixSpec {
    fn name(&self) -> String {
        format!(
            "hoh-map-mix(buckets={},range={},put={}‰)",
            self.buckets, self.key_range, self.put_permille
        )
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 7);
        let directory = f.param(0); // [n_buckets][sentinel_0]...
        let x = f.param(1);
        let n_ops = f.param(2);
        let range = f.param(3);
        let n_buckets = f.param(4);
        let put_pm = f.param(5);
        let arena = f.param(6);
        emit_worker_loop(&mut f, x, n_ops, |f, cont| {
            let key = f.new_reg();
            emit_uniform_key(f, key, x, range);
            let b = f.new_reg();
            emit_bucket_hash(f, b, key, n_buckets);
            let off = f.new_reg();
            f.bin(BinOp::Mul, off, b, 8i64);
            let slot = f.new_reg();
            f.bin(BinOp::Add, slot, directory, Operand::Reg(off));
            let sentinel = f.new_reg();
            f.load(sentinel, slot, 8);
            // opbit = ((x >> 13) mod 1000) < put_permille — different bits
            // than the key draw so op kind and key are decorrelated.
            let r = f.new_reg();
            f.bin(BinOp::Shr, r, x, 13i64);
            let rm = f.new_reg();
            f.bin(BinOp::And, rm, r, 0x7FFF_FFFFi64);
            let pm = f.new_reg();
            f.bin(BinOp::Rem, pm, rm, 1000i64);
            let opbit = f.new_reg();
            f.bin(BinOp::Lt, opbit, pm, put_pm);
            emit_hoh_op(f, sentinel, key, x, opbit, arena, cont);
        });
        f.finish().expect("hoh-map-mix worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64> {
        let arena = alloc_arena(vm, threads, ops, 40);
        let buckets = self.buckets;
        vm.setup(|h, alloc, _| {
            let directory = alloc.alloc(h, 8 + buckets as usize * 8).expect("directory");
            h.write_u64(directory, buckets);
            for i in 0..buckets as usize {
                let sentinel = build_node(h, alloc, -1, 0, 0);
                h.write_u64(directory + 8 + i * 8, sentinel as u64);
            }
            h.persist(directory, 8 + buckets as usize * 8);
            vec![directory as u64, arena as u64, ops * 40]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let arena = base[1] + thread as u64 * base[2];
        vec![
            base[0],
            0xFEED_BEEFu64 + 313 * thread as u64,
            ops,
            self.key_range,
            self.buckets,
            self.put_permille,
            arena,
        ]
    }

    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let directory = base[0] as PAddr;
        let n = h.read_u64(directory);
        for i in 0..n as usize {
            let sentinel = h.read_u64(directory + 8 + i * 8) as PAddr;
            verify_sorted_chain(&mut h, sentinel, total_ops + 1);
        }
    }
}

// ---------------------------------------------------------------------
// Twin counter (crash-oracle microbenchmark)
// ---------------------------------------------------------------------

/// The twin-counter workload: each operation, under one global lock,
/// increments two counter words that live on *different* cache lines.
///
/// This is the canonical crash-consistency probe (the invariant program of
/// `crates/vm/tests/crash_recovery.rs`, packaged as a [`WorkloadSpec`] so
/// the crash oracle in `ido-crashtest` can drive it): after any crash and
/// recovery the two words must agree — a disagreement is a torn FASE, and
/// because the words are on different lines, every partial write-back
/// schedule that could tear them is reachable by losing one line and not
/// the other.
#[derive(Debug, Clone, Copy, Default)]
pub struct TwinSpec;

impl WorkloadSpec for TwinSpec {
    fn name(&self) -> String {
        "twin-counter".into()
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 3);
        let lock = f.param(0);
        let cell = f.param(1);
        let n_ops = f.param(2);

        let i = f.new_reg();
        let head = f.new_block();
        let body = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(head);

        f.switch_to(head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        let a = f.new_reg();
        let a2 = f.new_reg();
        let b = f.new_reg();
        let b2 = f.new_reg();
        f.lock(lock);
        f.load(a, cell, 0);
        f.bin(BinOp::Add, a2, a, 1i64);
        f.store(cell, 0, Operand::Reg(a2));
        f.load(b, cell, 64);
        f.bin(BinOp::Add, b2, b, 1i64);
        f.store(cell, 64, Operand::Reg(b2));
        f.unlock(lock);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("twin worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, _threads: usize, _ops: u64) -> Vec<u64> {
        vm.setup(|h, alloc, _| {
            let lock = alloc.alloc(h, 8).expect("lock holder");
            let cell = alloc.alloc(h, 128).expect("twin cells");
            h.write_u64(cell, 0);
            h.write_u64(cell + 64, 0);
            h.persist(cell, 128);
            vec![lock as u64, cell as u64]
        })
    }

    fn worker_args(&self, base: &[u64], _thread: usize, ops: u64) -> Vec<u64> {
        vec![base[0], base[1], ops]
    }

    /// Prefix-safe invariants, valid after a crash and recovery as well as
    /// after a clean run: the twins agree (failure atomicity) and never
    /// exceed the number of FASEs issued (no double-applied increments).
    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64) {
        let mut h = vm.pool().handle();
        let cell = base[1] as PAddr;
        let v0 = h.read_u64(cell);
        let v64 = h.read_u64(cell + 64);
        assert_eq!(v0, v64, "torn FASE: twin counters disagree ({v0} vs {v64})");
        assert!(v0 <= total_ops, "overcounted: {v0} increments from {total_ops} FASEs");
    }
}

// ---------------------------------------------------------------------
// Allocator churn
// ---------------------------------------------------------------------

/// Slots in each thread's private persistent pointer array.
const CHURN_SLOTS: u64 = 64;

/// The allocator-stress workload: each thread churns a private array of
/// persistent pointer slots, allocating into empty slots and freeing full
/// ones, with sizes spread across every small size class. Unlike the four
/// Section V-B structures (which deliberately pre-allocate arenas so the
/// persistence runtimes dominate), this workload puts `nv_malloc`/`nv_free`
/// itself on the hot path — it is what the 64–256-thread allocator scaling
/// sweeps run to compare [`ido_nvm::AllocPolicy`] variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocChurnSpec;

impl WorkloadSpec for AllocChurnSpec {
    fn name(&self) -> String {
        "alloc_churn".into()
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 3);
        let x = f.param(0);
        let n_ops = f.param(1);
        let slots = f.param(2);
        let i = f.new_reg();

        let head = f.new_block();
        let body = f.new_block();
        let do_alloc = f.new_block();
        let do_free = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(head);

        f.switch_to(head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        emit_xorshift(&mut f, x);
        // cell = &slots[x % CHURN_SLOTS]
        let off = f.new_reg();
        let cell = f.new_reg();
        f.bin(BinOp::And, off, x, (CHURN_SLOTS as i64 - 1) * 8);
        f.bin(BinOp::Add, cell, slots, off);
        let ptr = f.new_reg();
        f.load(ptr, cell, 0);
        f.branch(ptr, do_free, do_alloc);

        // Empty slot: allocate 8..=512 bytes (hits every small class) and
        // publish the address into the slot.
        f.switch_to(do_alloc);
        let size = f.new_reg();
        let node = f.new_reg();
        f.bin(BinOp::And, size, x, 0x1F8i64);
        f.bin(BinOp::Add, size, size, 8i64);
        f.alloc(node, size);
        f.store(node, 0, Operand::Reg(x));
        f.store(cell, 0, Operand::Reg(node));
        f.jump(cont);

        // Full slot: retire the pointer, then free the block.
        f.switch_to(do_free);
        f.store(cell, 0, 0i64);
        f.free(ptr);
        f.jump(cont);

        f.switch_to(cont);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("alloc churn worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, threads: usize, _ops: u64) -> Vec<u64> {
        vm.setup(|h, alloc, _| {
            let bytes = threads as u64 * CHURN_SLOTS * 8;
            let slots = alloc.alloc(h, bytes as usize).expect("churn slot array");
            for w in 0..threads as u64 * CHURN_SLOTS {
                h.write_u64(slots + (w * 8) as usize, 0);
            }
            h.persist(slots, bytes as usize);
            vec![slots as u64, bytes]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        let slots = base[0] + thread as u64 * CHURN_SLOTS * 8;
        vec![0x9E3779B9u64 + 977 * thread as u64, ops, slots]
    }

    fn verify(&self, vm: &Vm, base: &[u64], _total_ops: u64) {
        let mut h = vm.pool().handle();
        // Every published slot must hold a plausible heap pointer (and
        // distinct slots distinct pointers); the VM would already have
        // panicked on a double-alloc'd or corrupt free, so this checks the
        // slot array itself survived intact.
        let mut seen = std::collections::HashSet::new();
        for w in 0..base[1] / 8 {
            let v = h.read_u64(base[0] as PAddr + (w * 8) as usize) as PAddr;
            if v != 0 {
                assert_eq!(v % 8, 0, "slot holds unaligned pointer {v:#x}");
                assert!(seen.insert(v), "two slots hold the same block {v:#x}");
            }
        }
    }
}
