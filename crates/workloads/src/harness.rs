//! The discrete-event throughput harness.
//!
//! Runs any [`WorkloadSpec`] under any scheme: the workload's program is
//! lowered by the real compiler pipeline, executed in the VM under the
//! min-clock (discrete-event) scheduler, and timed in simulated
//! nanoseconds. Lock contention appears as waiting time via the VM's
//! handoff clock inheritance, so throughput-vs-threads curves capture
//! serialization exactly as the paper's hardware runs do.

use ido_compiler::{instrument_program, Scheme};
use ido_ir::Program;
use ido_nvm::StatsSnapshot;
use ido_vm::layout::AppendLogLayout;
use ido_vm::{Profile, RunOutcome, SchedPolicy, Vm, VmConfig, THREADS_ROOT};

/// A benchmark workload: an IR program plus its persistent-state setup.
///
/// `Sync` is a supertrait so a `&dyn WorkloadSpec` can be shared with the
/// worker threads of `ido-par`'s deterministic parallel map (the sweep
/// engine fans one task per (scheme × thread-count) point out over a
/// shared spec). Specs are plain configuration data, so this costs
/// implementors nothing.
pub trait WorkloadSpec: Sync {
    /// Display name.
    fn name(&self) -> String;

    /// Builds the (uninstrumented) program; must define a `worker`
    /// function.
    fn build_program(&self) -> Program;

    /// Initializes persistent structures (including pre-allocated node
    /// arenas sized for `threads` × `ops`); returns base values consumed by
    /// [`WorkloadSpec::worker_args`].
    fn setup(&self, vm: &mut Vm, threads: usize, ops: u64) -> Vec<u64>;

    /// Arguments for worker thread `thread` performing `ops` operations.
    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64>;

    /// Verifies structural invariants after the run.
    ///
    /// # Panics
    /// Panics on violation.
    fn verify(&self, vm: &Vm, base: &[u64], total_ops: u64);
}

/// Results of one harness run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Scheme measured.
    pub scheme: Scheme,
    /// Workload name.
    pub workload: String,
    /// Worker thread count.
    pub threads: usize,
    /// Total operations completed.
    pub total_ops: u64,
    /// Simulated wall-clock time (max thread clock), ns.
    pub sim_ns: u64,
    /// Instructions interpreted.
    pub steps: u64,
    /// Dynamic region profile (meaningful under iDO).
    pub profile: Profile,
    /// Pool-wide persistence-operation counters.
    pub mem_stats: StatsSnapshot,
    /// Total append-log entries left in per-thread logs (Atlas's recovery
    /// must scan these — the Table I driver).
    pub log_entries: usize,
    /// Merged event trace, when the pool was configured with tracing on
    /// (`PoolConfig::trace`). `None` when tracing was disabled.
    pub trace: Option<ido_trace::Trace>,
    /// Windowed service metrics (op latency quantiles, goodput, persist
    /// counters), when the pool was configured with metrics on
    /// (`PoolConfig::metrics`). `None` when metrics were disabled.
    pub metrics: Option<ido_nvm::ServiceMetrics>,
}

impl RunStats {
    /// Throughput in million operations per simulated second.
    pub fn mops(&self) -> f64 {
        if self.sim_ns == 0 {
            return 0.0;
        }
        self.total_ops as f64 * 1e3 / self.sim_ns as f64
    }
}

/// Runs `spec` under `scheme` with `threads` workers × `ops_per_thread`
/// operations.
///
/// # Panics
/// Panics if instrumentation fails, the run deadlocks, or the workload's
/// invariants are violated — all of which are defects this harness exists
/// to surface.
pub fn run_workload(
    scheme: Scheme,
    spec: &dyn WorkloadSpec,
    threads: usize,
    ops_per_thread: u64,
    mut config: VmConfig,
) -> RunStats {
    let program = spec.build_program();
    let instrumented =
        instrument_program(program, scheme).expect("workload instruments cleanly");
    config.sched = SchedPolicy::MinClock;
    let mut vm = Vm::new(instrumented, config);
    let base = spec.setup(&mut vm, threads, ops_per_thread);
    for t in 0..threads {
        let args = spec.worker_args(&base, t, ops_per_thread);
        vm.spawn("worker", &args);
    }
    let outcome = vm.run();
    assert_eq!(outcome, RunOutcome::Completed, "workload must run to completion");
    let total_ops = threads as u64 * ops_per_thread;
    spec.verify(&vm, &base, total_ops);

    let sim_ns = vm.max_clock_ns();
    let steps = vm.steps();
    let profile = vm.profile().clone();
    let log_entries = count_log_entries(&vm);
    let pool = vm.pool().clone();
    drop(vm); // fold per-thread stats (and trace rings) into the pool
    RunStats {
        scheme,
        workload: spec.name(),
        threads,
        total_ops,
        sim_ns,
        steps,
        profile,
        mem_stats: pool.global_stats(),
        log_entries,
        trace: pool.take_trace(),
        metrics: pool.take_metrics(),
    }
}

/// Counts surviving entries across all per-thread append logs.
fn count_log_entries(vm: &Vm) -> usize {
    let mut h = vm.pool().handle();
    let roots = ido_nvm::root::RootTable;
    let Some(registry) = roots.root(&mut h, THREADS_ROOT) else {
        return 0;
    };
    let count = h.read_u64(registry) as usize;
    let mut total = 0;
    for i in 0..count {
        let app_base = h.read_u64(registry + 8 + i * 32 + 16) as usize;
        let log = AppendLogLayout { base: app_base, capacity: vm.config().log_entries };
        total += log.scan_len(&mut h);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{memcached::MemcachedSpec, redis::RedisSpec};
    use crate::micro::{ListSpec, MapSpec, QueueSpec, StackSpec};
    use ido_nvm::PoolConfig;

    fn small_config() -> VmConfig {
        // Default (realistic) latency model: the shape assertions below are
        // about persistence costs, which a zeroed model would erase.
        VmConfig { pool: PoolConfig { size: 8 << 20, ..PoolConfig::default() }, log_entries: 4096, ..VmConfig::default() }
    }

    fn smoke(spec: &dyn WorkloadSpec, scheme: Scheme, threads: usize) -> RunStats {
        run_workload(scheme, spec, threads, 40, small_config())
    }

    #[test]
    fn every_workload_runs_under_every_scheme() {
        let specs: Vec<Box<dyn WorkloadSpec>> = vec![
            Box::new(StackSpec),
            Box::new(QueueSpec),
            Box::new(ListSpec { key_range: 32 }),
            Box::new(MapSpec { buckets: 8, key_range: 128 }),
            Box::new(MemcachedSpec { buckets: 16, key_range: 256, put_permille: 500 }),
            Box::new(RedisSpec { buckets: 16, key_range: 256, put_permille: 200 }),
        ];
        for spec in &specs {
            for scheme in Scheme::ALL {
                let stats = smoke(spec.as_ref(), scheme, 2);
                assert_eq!(stats.total_ops, 80, "{} under {scheme}", spec.name());
                assert!(stats.sim_ns > 0);
            }
        }
    }

    #[test]
    fn alloc_churn_runs_under_every_scheme_and_policy() {
        use crate::micro::AllocChurnSpec;
        use ido_nvm::AllocPolicy;
        for scheme in Scheme::ALL {
            let stats = smoke(&AllocChurnSpec, scheme, 2);
            assert!(stats.sim_ns > 0, "alloc_churn under {scheme}");
        }
        for alloc in [AllocPolicy::GlobalDes, AllocPolicy::Sharded { shards: 4 }] {
            let cfg = VmConfig { alloc, ..small_config() };
            run_workload(Scheme::Origin, &AllocChurnSpec, 4, 40, cfg);
        }
    }

    #[test]
    fn sharded_allocator_beats_global_mutex_under_churn() {
        use crate::micro::AllocChurnSpec;
        use ido_nvm::AllocPolicy;
        let threads = 16;
        let global = run_workload(
            Scheme::Origin,
            &AllocChurnSpec,
            threads,
            40,
            VmConfig { alloc: AllocPolicy::GlobalDes, ..small_config() },
        );
        let sharded = run_workload(
            Scheme::Origin,
            &AllocChurnSpec,
            threads,
            40,
            VmConfig { alloc: AllocPolicy::Sharded { shards: threads }, ..small_config() },
        );
        assert!(
            sharded.mops() > global.mops() * 2.0,
            "sharded allocator must scale past the global mutex at {threads}T: \
             global={:.3} sharded={:.3} Mops/s",
            global.mops(),
            sharded.mops()
        );
    }

    #[test]
    fn ido_beats_justdo_on_stack_throughput() {
        let ido = smoke(&StackSpec, Scheme::Ido, 4);
        let justdo = smoke(&StackSpec, Scheme::JustDo, 4);
        assert!(
            ido.mops() > justdo.mops(),
            "iDO {:.3} must beat JUSTDO {:.3} Mops/s",
            ido.mops(),
            justdo.mops()
        );
    }

    #[test]
    fn origin_is_fastest() {
        for scheme in [Scheme::Ido, Scheme::Atlas, Scheme::JustDo] {
            let origin = smoke(&StackSpec, Scheme::Origin, 2);
            let other = smoke(&StackSpec, scheme, 2);
            assert!(origin.mops() > other.mops(), "Origin must beat {scheme}");
        }
    }

    #[test]
    fn map_scales_with_threads_under_ido() {
        let spec = MapSpec { buckets: 64, key_range: 1024 };
        let one = run_workload(Scheme::Ido, &spec, 1, 60, small_config());
        let eight = run_workload(Scheme::Ido, &spec, 8, 60, small_config());
        assert!(
            eight.mops() > one.mops() * 3.0,
            "hash map should scale: 1T={:.3} 8T={:.3}",
            one.mops(),
            eight.mops()
        );
    }

    #[test]
    fn stack_serializes_under_contention() {
        let one = smoke(&StackSpec, Scheme::Ido, 1);
        let eight = smoke(&StackSpec, Scheme::Ido, 8);
        assert!(
            eight.mops() < one.mops() * 3.0,
            "the single-lock stack must not scale linearly: 1T={:.3} 8T={:.3}",
            one.mops(),
            eight.mops()
        );
    }

    #[test]
    fn atlas_leaves_log_entries_but_ido_does_not() {
        let atlas = smoke(&StackSpec, Scheme::Atlas, 2);
        let ido = smoke(&StackSpec, Scheme::Ido, 2);
        assert!(atlas.log_entries > 0, "Atlas accumulates undo/lock entries");
        assert_eq!(ido.log_entries, 0, "iDO keeps no per-store log");
    }

    #[test]
    fn ido_profile_collects_region_data() {
        let stats = smoke(&RedisSpec { buckets: 16, key_range: 256, put_permille: 500 }, Scheme::Ido, 1);
        assert!(stats.profile.regions > 0);
        assert!(stats.profile.fases > 0);
        assert!(stats.profile.frac_inputs_below_5() > 0.5);
    }

    #[test]
    fn deterministic_repeat() {
        let a = smoke(&QueueSpec, Scheme::Ido, 3);
        let b = smoke(&QueueSpec, Scheme::Ido, 3);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.steps, b.steps);
    }
}
