//! Shared IR-emission helpers for the workload builders.

use ido_ir::{BinOp, FunctionBuilder, Operand, Reg};

/// Emits an xorshift64 step: `x = xorshift(x)`. Six ALU instructions, all
/// register-resident (the WAR repair in `ido-idem` splits the final write
/// when `x` is a region input, exactly as the paper's live-interval
/// extension would).
pub fn emit_xorshift(f: &mut FunctionBuilder<'_>, x: Reg) {
    let t = f.new_reg();
    f.bin(BinOp::Shl, t, x, 13i64);
    f.bin(BinOp::Xor, x, x, t);
    let t2 = f.new_reg();
    f.bin(BinOp::Shr, t2, x, 7i64);
    f.bin(BinOp::Xor, x, x, t2);
    let t3 = f.new_reg();
    f.bin(BinOp::Shl, t3, x, 17i64);
    f.bin(BinOp::Xor, x, x, t3);
}

/// Emits `dst = (x >> 3) mod range` with the sign bit cleared, for uniform
/// key draws. `range` is a register holding the key range.
pub fn emit_uniform_key(f: &mut FunctionBuilder<'_>, dst: Reg, x: Reg, range: Reg) {
    let pos = f.new_reg();
    f.bin(BinOp::Shr, pos, x, 3i64);
    let masked = f.new_reg();
    f.bin(BinOp::And, masked, pos, 0x7FFF_FFFFi64);
    f.bin(BinOp::Rem, dst, masked, range);
}

/// Emits a power-law-skewed key draw: squaring a uniform variate
/// concentrates mass near zero, approximating the paper's power-law client
/// distribution. `dst = ((u*u) >> 20) mod range` with `u` a 20-bit uniform.
pub fn emit_powerlaw_key(f: &mut FunctionBuilder<'_>, dst: Reg, x: Reg, range: Reg) {
    let u = f.new_reg();
    let shifted = f.new_reg();
    f.bin(BinOp::Shr, shifted, x, 5i64);
    f.bin(BinOp::And, u, shifted, 0xF_FFFFi64); // 20-bit uniform
    let sq = f.new_reg();
    f.bin(BinOp::Mul, sq, u, Operand::Reg(u));
    let scaled = f.new_reg();
    f.bin(BinOp::Shr, scaled, sq, 20i64);
    f.bin(BinOp::Rem, dst, scaled, range);
}

/// Emits a bump-pointer node grab from a pre-allocated arena:
/// `dst = cursor; cursor += size`. The benchmarks pre-allocate their node
/// pools (standard stress-test practice, also used by the JUSTDO
/// microbenchmarks) so the hot paths measure the persistence runtimes, not
/// the allocator.
pub fn emit_arena_take(f: &mut FunctionBuilder<'_>, dst: Reg, cursor: Reg, size: i64) {
    f.mov(dst, Operand::Reg(cursor));
    f.bin(BinOp::Add, cursor, cursor, size);
}

/// Emits the Fibonacci bucket hash
/// `dst = ((key * 0x9E37_79B9_7F4A_7C15) >> 32) mod buckets`, bit-exact
/// with the native `PHashMap::bucket_of` and `NvtMap::bucket_of`.
///
/// Bit-exactness matters: the native structures' `check_invariants`
/// recompute the hash to assert home-bucket placement, so the crash
/// oracle can only wire those checkers against IR-built map states if
/// the IR worker and the native code agree on every key's bucket. (The
/// original emitter multiplied by a truncated 32-bit constant and
/// shifted by 16 — disagreeing with the native hash for almost every
/// key, which the structures-oracle differential surfaced.)
pub fn emit_bucket_hash(f: &mut FunctionBuilder<'_>, dst: Reg, key: Reg, buckets: Reg) {
    let mixed = f.new_reg();
    f.bin(BinOp::Mul, mixed, key, 0x9E37_79B9_7F4A_7C15u64 as i64);
    let hi = f.new_reg();
    f.bin(BinOp::Shr, hi, mixed, 32i64); // logical shift: top 32 bits clear
    f.bin(BinOp::Rem, dst, hi, buckets);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ido_ir::ProgramBuilder;

    #[test]
    fn helpers_emit_valid_code() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("t", 2);
        let x = f.param(0);
        let range = f.param(1);
        let k1 = f.new_reg();
        let k2 = f.new_reg();
        let b = f.new_reg();
        emit_xorshift(&mut f, x);
        emit_uniform_key(&mut f, k1, x, range);
        emit_powerlaw_key(&mut f, k2, x, range);
        emit_bucket_hash(&mut f, b, k1, range);
        let b2 = f.new_reg();
        emit_bucket_hash(&mut f, b2, k2, range);
        f.ret(Some(Operand::Reg(b)));
        assert!(f.finish().is_ok());
    }
}
