//! Benchmark workloads for the iDO reproduction.
//!
//! Every workload of the paper's evaluation is expressed as an `ido-ir`
//! program built here, so the complete compiler pipeline (FASE inference →
//! idempotent region formation → per-scheme instrumentation) runs on
//! exactly the code being measured:
//!
//! * the four JUSTDO **microbenchmarks** (Section V-B): locked Treiber
//!   stack, two-lock Michael–Scott queue, hand-over-hand ordered list, and
//!   the fixed-size hash map built from it ([`micro`]);
//! * a **Memcached-like** multi-threaded key-value cache with the
//!   coarse-grained locking of Memcached 1.2.4, driven by uniformly
//!   distributed keys in insertion-intensive (50/50) and search-intensive
//!   (10/90) mixes ([`kv::memcached`]);
//! * a **Redis-like** single-threaded object store using programmer-
//!   delineated durable regions, driven by a power-law key distribution
//!   over configurable key ranges with an 80/20 get/put mix
//!   ([`kv::redis`]);
//! * a **service-style** fixed-slot store with striped-lock puts and
//!   lock-free gets, designed to stay drivable across a crash (no arena
//!   cursor) — the crash-under-load workload of `service_bench`
//!   ([`service`]).
//!
//! The [`harness`] module runs any workload under any scheme in the VM's
//! min-clock (discrete-event) mode and reports simulated throughput, the
//! dynamic region profile (Fig. 8), persistence-operation counts, and the
//! log volumes recovery would have to process (Table I).

#![deny(missing_docs)]

pub mod harness;
pub mod kv;
pub mod lockfree;
pub mod micro;
pub mod service;
mod util;

pub use harness::{run_workload, RunStats, WorkloadSpec};

/// The standard workload suite, one boxed spec per benchmark, in the order
/// the figures present them: the four microbenchmarks, then the two
/// key-value stores. Sweep-style consumers (the static verifier's lint
/// mode, CI gates) iterate this instead of hand-listing specs so a new
/// workload is automatically covered.
pub fn standard_specs() -> Vec<Box<dyn WorkloadSpec>> {
    vec![
        Box::new(micro::StackSpec),
        Box::new(micro::QueueSpec),
        Box::new(micro::ListSpec::default()),
        Box::new(micro::MapSpec::default()),
        Box::new(kv::memcached::MemcachedSpec::insertion_intensive()),
        Box::new(kv::redis::RedisSpec::with_range(256)),
        Box::new(service::ServiceSpec::with_range(256)),
    ]
}

/// The lock-free workload suite (ISSUE 9): specs that only run under the
/// recoverable-CAS scheme family (`Scheme::LOCKFREE`). Kept separate from
/// [`standard_specs`] — the seven-spec standard suite is pinned by the
/// lint matrix and goldens, and these specs' `Inst::Cas` would be
/// rejected by the lock-delineated schemes' instrumentation anyway.
pub fn lockfree_specs() -> Vec<Box<dyn WorkloadSpec>> {
    vec![Box::new(lockfree::LfListSpec), Box::new(lockfree::LfMapSpec::default())]
}
