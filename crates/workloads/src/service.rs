//! A service-style KV workload over a fixed-slot table — the
//! crash-under-load workload behind the `service_bench` driver.
//!
//! Unlike the chained kv stores, every key owns a fixed 16-byte slot
//! (`[VAL][CHK]`): no allocation and no arena cursor, so a crashed pool
//! can be re-attached and driven further with fresh workers — exactly
//! what an online-recovery benchmark needs (an arena cursor lives in a
//! register and would not survive the crash). A `put` is a striped-lock
//! FASE writing the value word `VAL = (key << 20) | seq` and its checksum
//! word `CHK = VAL ^ CHK_MAGIC`; a `get` is a lock-free pair of reads.
//! Keys follow the same power-law (zipfian-like) distribution as the
//! redis workload, so a handful of hot keys dominate the traffic.
//!
//! Every operation is bracketed by metrics span markers (`op_begin` /
//! `op_end`, kind 1 = get, 2 = put), which is what feeds the windowed
//! latency series of `service_bench`.

use ido_ir::{BinOp, Program, ProgramBuilder};
use ido_nvm::{PmemHandle, PAddr};
use ido_vm::Vm;

use crate::harness::WorkloadSpec;
use crate::util::{emit_powerlaw_key, emit_xorshift};

/// Checksum mask: a written slot always satisfies `CHK == VAL ^ CHK_MAGIC`;
/// `(0, 0)` means "never written".
pub const CHK_MAGIC: u64 = 0x5EED_CAFE_F00D_BEEF;
/// Lock stripes guarding the slots (`lock = stripe_base + (key % stripes)`).
pub const LOCK_STRIPES: u64 = 64;
const SLOT_BYTES: u64 = 16;

/// Spec: fixed-slot KV service with striped-lock puts and lock-free gets.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSpec {
    /// Number of keys (each owns one 16-byte slot).
    pub key_range: u64,
    /// Put rate in permille.
    pub put_permille: u64,
}

impl ServiceSpec {
    /// A service over `key_range` keys with the redis-like 80/20 get/put mix.
    pub fn with_range(key_range: u64) -> Self {
        ServiceSpec { key_range, put_permille: 200 }
    }
}

impl WorkloadSpec for ServiceSpec {
    fn name(&self) -> String {
        format!("service(range={})", self.key_range)
    }

    fn build_program(&self) -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.new_function("worker", 6);
        let lock_base = f.param(0);
        let table = f.param(1);
        let x = f.param(2);
        let n_ops = f.param(3);
        let range = f.param(4);
        let put_permille = f.param(5);

        let i = f.new_reg();
        let head = f.new_block();
        let body = f.new_block();
        let cont = f.new_block();
        let exit = f.new_block();

        f.mov(i, 0i64);
        f.jump(head);

        f.switch_to(head);
        let c = f.new_reg();
        f.bin(BinOp::Lt, c, i, n_ops);
        f.branch(c, body, exit);

        f.switch_to(body);
        // Request parsing + dispatch cost of a real service operation.
        f.delay(200);
        emit_xorshift(&mut f, x);
        let key = f.new_reg();
        emit_powerlaw_key(&mut f, key, x, range);
        let sel = f.new_reg();
        let shifted = f.new_reg();
        f.bin(BinOp::Shr, shifted, x, 9i64);
        f.bin(BinOp::And, sel, shifted, 1023i64);
        let is_put = f.new_reg();
        f.bin(BinOp::Lt, is_put, sel, put_permille);
        // Metrics span: kind 1 = get, 2 = put. Opened before the lock so
        // the recorded latency includes queueing behind the stripe.
        let op_kind = f.new_reg();
        f.bin(BinOp::Add, op_kind, is_put, 1i64);
        f.op_begin(op_kind);

        let slot = f.new_reg();
        f.bin(BinOp::Mul, slot, key, SLOT_BYTES as i64);
        f.bin(BinOp::Add, slot, slot, table);
        let lock = f.new_reg();
        f.bin(BinOp::And, lock, key, (LOCK_STRIPES - 1) as i64);
        f.bin(BinOp::Mul, lock, lock, 8i64);
        f.bin(BinOp::Add, lock, lock, lock_base);
        let put_blk = f.new_block();
        let get_blk = f.new_block();
        f.branch(is_put, put_blk, get_blk);

        // put: one short FASE under the stripe lock writing the
        // value/checksum pair — torn iff failure atomicity is broken.
        f.switch_to(put_blk);
        f.lock(lock);
        let seq = f.new_reg();
        f.bin(BinOp::And, seq, x, 0xF_FFFFi64);
        let v = f.new_reg();
        f.bin(BinOp::Shl, v, key, 20i64);
        f.bin(BinOp::Or, v, v, seq);
        f.store(slot, 0, v);
        let chk = f.new_reg();
        f.bin(BinOp::Xor, chk, v, CHK_MAGIC as i64);
        f.store(slot, 8, chk);
        f.unlock(lock);
        f.jump(cont);

        // get: lock-free slot read (persistent reads outside FASEs are
        // race-free in the DES — consistency is asserted at verify time).
        f.switch_to(get_blk);
        let rv = f.new_reg();
        f.load(rv, slot, 0);
        let rc = f.new_reg();
        f.load(rc, slot, 8);
        f.jump(cont);

        f.switch_to(cont);
        f.op_end(op_kind);
        f.bin(BinOp::Add, i, i, 1i64);
        f.jump(head);

        f.switch_to(exit);
        f.ret(None);
        f.finish().expect("service worker verifies");
        pb.finish()
    }

    fn setup(&self, vm: &mut Vm, _threads: usize, _ops: u64) -> Vec<u64> {
        let range = self.key_range;
        vm.setup(|h, alloc, _| {
            let lock_base = alloc.alloc(h, (LOCK_STRIPES * 8) as usize).expect("lock stripes");
            let table = alloc.alloc(h, (range * SLOT_BYTES) as usize).expect("slot table");
            // Fresh allocations are zero in both pool images, and (0, 0)
            // reads as "never written" — no formatting pass needed.
            vec![lock_base as u64, table as u64]
        })
    }

    fn worker_args(&self, base: &[u64], thread: usize, ops: u64) -> Vec<u64> {
        vec![
            base[0],
            base[1],
            0xDEC0_DE5Eu64 + 104_729 * thread as u64,
            ops,
            self.key_range,
            self.put_permille,
        ]
    }

    fn verify(&self, vm: &Vm, base: &[u64], _total_ops: u64) {
        let mut h = vm.pool().handle();
        verify_slots(&mut h, base[1] as PAddr, self.key_range);
    }
}

/// Checks every slot of a service table: either never written or a
/// consistent `(VAL, CHK)` pair carrying its own key.
///
/// Exposed separately so crash drivers can re-check the table on a
/// recovered pool without a [`Vm`].
///
/// # Panics
/// Panics on a torn pair or a value under the wrong key.
pub fn verify_slots(h: &mut PmemHandle, table: PAddr, key_range: u64) {
    for k in 0..key_range {
        let base = table + (k * SLOT_BYTES) as usize;
        let v = h.read_u64(base);
        let c = h.read_u64(base + 8);
        if v == 0 && c == 0 {
            continue; // never written
        }
        assert_eq!(c, v ^ CHK_MAGIC, "slot {k}: torn value/checksum pair");
        assert_eq!(v >> 20, k, "slot {k}: value written under the wrong key");
    }
}
