//! Zero-allocation regression test for the interpreter hot loop (ISSUE 2
//! acceptance: "no per-step heap allocation or `Inst` clone in the hot
//! loop").
//!
//! The instruction stream is pre-decoded at `Vm::new`, `step_thread`
//! borrows instructions from it, and the per-access tracking sets are
//! fixed-size bitsets — so executing straight-line arithmetic must not
//! touch the heap at all. This test pins that with a counting
//! `#[global_allocator]`: after warmup, a 100k-step window of a pure
//! arithmetic loop must perform exactly zero allocations. Any future
//! regression to per-step cloning/collecting shows up as a nonzero count.
//!
//! The trace subsystem extends the guarantee: with `PoolConfig::trace`
//! enabled, every event lands in the ring buffer preallocated at handle
//! creation (wrapping overwrites, never grows), so the traced hot loop
//! must also measure zero allocations.
//!
//! The metrics subsystem makes the same promise: with
//! `PoolConfig::metrics` enabled, every op span lands in the handle's
//! preallocated `MetricsBuf` (fixed-size histograms, window cells
//! preallocated up front), so a hot loop bracketed by `op_begin`/`op_end`
//! markers must also measure zero allocations.
//!
//! The tier-2 block-compiled engine (ISSUE 6) inherits the guarantee: a
//! segment run borrows the thread's register file (`mem::take` of the
//! frame's `Vec`, returned at segment exit), the compiled `Tier2Program`
//! is built once at `Vm::new`, and batched cost charges are plain integer
//! arithmetic — so tier-2 segments must also execute allocation-free.
//! All phases run sequentially in the single test below.
//!
//! Counting is scoped to the test's own thread (see `MEASURED_THREAD`),
//! so allocations on other process threads — notably libtest's main
//! thread, whose timed channel recv can allocate on scheduler wakeups —
//! cannot pollute the measured window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ido_compiler::{instrument_program, Scheme};
use ido_ir::{BinOp, ProgramBuilder};
use ido_vm::{ExecTier, RunOutcome, Vm, VmConfig};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// Count only the measuring thread's allocations. The process has other
// live threads — libtest's main thread waits on a channel whose timed
// recv can re-register (and allocate) on scheduler wakeups, which is
// load-dependent — and charging those to the hot loop made this test
// flake under a busy machine. The hot loop runs entirely on the test
// thread, so a thread-scoped count pins the same guarantee without the
// cross-thread noise. (`const`-init TLS never allocates, so reading the
// flag inside the allocator cannot recurse; `try_with` covers TLS
// teardown.)
thread_local! {
    static MEASURED_THREAD: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn note() {
    if MEASURED_THREAD.try_with(|f| f.get()).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        note();
        System.alloc(l)
    }
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        System.dealloc(p, l)
    }
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        note();
        System.realloc(p, l, n)
    }
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        note();
        System.alloc_zeroed(l)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// `worker(n)`: a counted loop of pure register arithmetic — the distilled
/// interpreter hot path (Mov/Bin/Branch/Jump; no locks, stores, or calls).
fn arithmetic_loop() -> ido_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("worker", 1);
    let n = f.param(0);
    let i = f.new_reg();
    let acc = f.new_reg();

    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();

    f.mov(i, 0i64);
    f.mov(acc, 1i64);
    f.jump(head);

    f.switch_to(head);
    let c = f.new_reg();
    f.bin(BinOp::Lt, c, i, n);
    f.branch(c, body, exit);

    f.switch_to(body);
    f.bin(BinOp::Add, acc, acc, i);
    f.bin(BinOp::Xor, acc, acc, 0x5aa5i64);
    f.bin(BinOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.ret(None);
    f.finish().expect("arithmetic loop verifies");
    pb.finish()
}

/// `worker(n)`: the arithmetic loop with a persistent store per iteration
/// — the distilled *traced* hot path (every store emits a ring event).
fn store_loop() -> ido_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("worker", 1);
    let n = f.param(0);
    let i = f.new_reg();
    let base = f.new_reg();

    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();

    f.alloc(base, 64i64);
    f.mov(i, 0i64);
    f.jump(head);

    f.switch_to(head);
    let c = f.new_reg();
    f.bin(BinOp::Lt, c, i, n);
    f.branch(c, body, exit);

    f.switch_to(body);
    f.store(base, 0, i);
    f.bin(BinOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.ret(None);
    f.finish().expect("store loop verifies");
    pb.finish()
}

/// `worker(n)`: the store loop with each iteration bracketed by metrics
/// op-span markers — the distilled *metered* hot path (span open/close,
/// latency record, counter-delta attribution per iteration).
fn op_span_loop() -> ido_ir::Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("worker", 1);
    let n = f.param(0);
    let i = f.new_reg();
    let base = f.new_reg();

    let head = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();

    f.alloc(base, 64i64);
    f.mov(i, 0i64);
    f.jump(head);

    f.switch_to(head);
    let c = f.new_reg();
    f.bin(BinOp::Lt, c, i, n);
    f.branch(c, body, exit);

    f.switch_to(body);
    f.op_begin(2i64);
    f.store(base, 0, i);
    f.op_end(2i64);
    f.bin(BinOp::Add, i, i, 1i64);
    f.jump(head);

    f.switch_to(exit);
    f.ret(None);
    f.finish().expect("op span loop verifies");
    pb.finish()
}

/// Runs `program` for a measured 100k-step window and returns the VM for
/// post-window assertions.
fn measure_window(program: ido_ir::Program, cfg: VmConfig, what: &str) -> Vm {
    let inst = instrument_program(program, Scheme::Origin)
        .expect("origin instrumentation is the identity");
    let mut vm = Vm::new(inst, cfg);
    // More iterations than the measured window can consume, so the thread
    // never exits the loop (Ret/teardown is not the hot path).
    vm.spawn("worker", &[u64::MAX / 2]);

    // Warmup: first steps may lazily grow frames, scheduler state, etc.
    assert_eq!(vm.run_steps(10_000), RunOutcome::Paused);

    let before = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(vm.run_steps(110_000), RunOutcome::Paused);
    let after = ALLOCS.load(Ordering::Relaxed);

    assert_eq!(
        after - before,
        0,
        "the {what} hot loop must not allocate: {} allocations in 100k steps",
        after - before
    );
    vm
}

#[test]
fn hot_loop_makes_zero_allocations_per_step() {
    MEASURED_THREAD.with(|f| f.set(true));

    // Phase 1: tracing disabled (the default) — the original guarantee.
    measure_window(arithmetic_loop(), VmConfig::for_tests(), "decoded-instruction");

    // Phase 2: tracing enabled with a deliberately tiny ring, so the
    // measured window both emits events and wraps the ring many times —
    // wrapping must overwrite in place, never grow.
    let mut cfg = VmConfig::for_tests();
    cfg.pool.trace = ido_trace::TraceConfig { enabled: true, buf_entries: 256 };
    let vm = measure_window(store_loop(), cfg, "traced");

    let pool = vm.pool().clone();
    drop(vm); // fold the thread's ring into the pool collector
    let trace = pool.take_trace().expect("tracing was on");
    assert!(trace.pushed > 10_000, "window must emit events ({} pushed)", trace.pushed);
    assert!(trace.dropped > 0, "the 256-entry ring must wrap ({} pushed)", trace.pushed);
    assert_eq!(trace.events.len() as u64, trace.pushed - trace.dropped);

    // Phase 3: the tier-2 engine on the same arithmetic loop — fused
    // Mov/Bin/CmpBranch superinstructions in gated segments, register file
    // borrowed from the frame, still zero allocations per step.
    let mut t2 = VmConfig::for_tests();
    t2.tier = ExecTier::Tier2;
    measure_window(arithmetic_loop(), t2, "tier-2 block-compiled");

    // Phase 4: tier 2 with tracing on and the tiny wrapping ring — the
    // fused store+clwb path emits through the same preallocated ring.
    let mut t2t = VmConfig::for_tests();
    t2t.tier = ExecTier::Tier2;
    t2t.pool.trace = ido_trace::TraceConfig { enabled: true, buf_entries: 256 };
    measure_window(store_loop(), t2t, "tier-2 traced");

    // Phase 5: metrics enabled — every iteration opens and closes an op
    // span (histogram record + counter-delta attribution). A huge window
    // keeps the whole run in cell 0, so the preallocated window vector
    // never grows inside the measured window.
    let mut mcfg = VmConfig::for_tests();
    mcfg.pool.metrics = ido_nvm::MetricsConfig::with_window(1 << 40);
    let vm = measure_window(op_span_loop(), mcfg, "metered");
    let pool = vm.pool().clone();
    drop(vm); // fold the thread's metrics buffer into the pool collector
    let m = pool.take_metrics().expect("metrics were on");
    assert!(m.total_ops() > 10_000, "window must record op spans ({} ops)", m.total_ops());
    assert_eq!(m.total_ops(), m.per_kind[2].count(), "all spans carry the put kind");

    // Phase 6: tier 2 with metrics on — op markers are non-fusible, so
    // the tier-1 stepper executes them between fused segments; still
    // allocation-free.
    let mut t2m = VmConfig::for_tests();
    t2m.tier = ExecTier::Tier2;
    t2m.pool.metrics = ido_nvm::MetricsConfig::with_window(1 << 40);
    measure_window(op_span_loop(), t2m, "tier-2 metered");
}
