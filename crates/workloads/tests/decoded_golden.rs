//! Pins the interpreter's dynamic behaviour on the twin-counter workload —
//! step count, simulated nanoseconds, and a hash of the final persistent
//! image — for every scheme.
//!
//! The golden values below were captured from the original (pre-decode)
//! interpreter, which cloned each `Inst` per step and tracked registers in
//! `BTreeSet`s. The decoded fast path (flat per-function instruction
//! streams, bitset register tracking, sort-on-drain store sets) must execute
//! **step-for-step identically**: same schedule, same persist events, same
//! simulated clocks, same bytes in NVM. Any divergence here means the
//! optimization changed semantics, not just speed.

use ido_compiler::{instrument_program, Scheme};
use ido_vm::{ExecTier, RunOutcome, SchedPolicy, Vm, VmConfig};
use ido_workloads::micro::TwinSpec;
use ido_workloads::WorkloadSpec;

const THREADS: usize = 2;
const OPS: u64 = 4;

/// FNV-1a over the persistent image: stable, dependency-free fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the twin-counter workload exactly like the DES harness does and
/// returns `(steps, sim_ns, fnv1a(persistent image))`.
fn fingerprint(scheme: Scheme) -> (u64, u64, u64) {
    fingerprint_on(scheme, ExecTier::Tier1)
}

fn fingerprint_on(scheme: Scheme, tier: ExecTier) -> (u64, u64, u64) {
    let spec = TwinSpec;
    let inst = instrument_program(spec.build_program(), scheme).expect("instruments cleanly");
    let mut cfg = VmConfig::for_tests();
    cfg.sched = SchedPolicy::MinClock;
    cfg.tier = tier;
    let mut vm = Vm::new(inst, cfg);
    let base = spec.setup(&mut vm, THREADS, OPS);
    for t in 0..THREADS {
        vm.spawn("worker", &spec.worker_args(&base, t, OPS));
    }
    assert_eq!(vm.run(), RunOutcome::Completed);
    spec.verify(&vm, &base, THREADS as u64 * OPS);
    let steps = vm.steps();
    let sim_ns = vm.max_clock_ns();
    let image = vm.pool().persistent_snapshot();
    // Make the unflushed tail explicit: crash-drop dirty lines so the hash
    // covers exactly what a failure would have preserved.
    (steps, sim_ns, fnv1a(&image))
}

/// Golden `(scheme, steps, sim_ns, image_hash)` rows captured from the
/// pre-decode interpreter (seed revision, 2 threads x 4 ops, MinClock,
/// `VmConfig::for_tests()`).
const GOLDEN: [(Scheme, u64, u64, u64); 7] = [
    (Scheme::Origin, 113, 345, 0xc579eda0d6f4fa8f),
    (Scheme::Ido, 193, 346, 0xe662a73ef47958e7),
    (Scheme::Atlas, 161, 16345, 0xd5d6cd673170dc4f),
    (Scheme::Mnemosyne, 129, 345, 0x441be4203e7cd48f),
    (Scheme::JustDo, 193, 1785, 0xc8287cf1d2d7f5f3),
    (Scheme::Nvml, 145, 345, 0x413603d71e91ffcf),
    (Scheme::Nvthreads, 145, 29945, 0x528d27ae35c4f6e6),
];

#[test]
fn decoded_fast_path_matches_the_golden_pre_decode_run() {
    for (scheme, steps, sim_ns, hash) in GOLDEN {
        let got = fingerprint(scheme);
        assert_eq!(
            got,
            (steps, sim_ns, hash),
            "{scheme}: decoded interpreter diverged from the pre-decode golden run"
        );
    }
}

#[test]
fn tier2_matches_the_golden_pre_decode_run() {
    // The block-compiled engine must land on the *same* golden rows the
    // original clone-per-step interpreter produced: two optimization
    // generations later, still step-for-step identical dynamics.
    for (scheme, steps, sim_ns, hash) in GOLDEN {
        let got = fingerprint_on(scheme, ExecTier::Tier2);
        assert_eq!(
            got,
            (steps, sim_ns, hash),
            "{scheme}: tier-2 engine diverged from the pre-decode golden run"
        );
    }
}

#[test]
fn fingerprints_are_reproducible_within_a_build() {
    // Guards the golden test's own premise: the fingerprint is a pure
    // function of (scheme, config) on this interpreter build.
    for scheme in [Scheme::Ido, Scheme::Mnemosyne] {
        assert_eq!(fingerprint(scheme), fingerprint(scheme), "{scheme}");
    }
}

#[test]
#[ignore = "probe: prints golden rows for capture"]
fn probe_print_goldens() {
    for scheme in Scheme::ALL {
        let (steps, sim_ns, hash) = fingerprint(scheme);
        println!("    (Scheme::{scheme:?}, {steps}, {sim_ns}, {hash:#x}),");
    }
}
