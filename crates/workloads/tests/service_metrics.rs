//! Windowed-metrics pinning tests for the service workload.
//!
//! Two guarantees the `service_bench` driver relies on are pinned here,
//! in-process and scheme-level, so a regression shows up as a unit-test
//! diff rather than a CI artifact mismatch:
//!
//! 1. **Golden window series**: a fixed small iDO service run renders
//!    exactly the checked-in per-window CSV (goodput, quantiles, persist
//!    deltas). Timestamps, latencies, and counters are all simulated, so
//!    the series is stable across hosts. Regenerate after an intentional
//!    change with:
//!
//!    ```sh
//!    IDO_BLESS=1 cargo test -p ido-workloads --test service_metrics
//!    ```
//!
//! 2. **Fan-out determinism**: merging per-shard timelines produced under
//!    `jobs = 1` and `jobs = 4` worker threads yields byte-identical CSV
//!    and Prometheus renderings — the in-process core of the CI gate that
//!    diffs `BENCH_service.json` across `IDO_JOBS` settings.

use std::path::PathBuf;

use ido_compiler::Scheme;
use ido_nvm::{MetricsConfig, ServiceMetrics};
use ido_vm::VmConfig;
use ido_workloads::service::ServiceSpec;
use ido_workloads::run_workload;

const WINDOW_NS: u64 = 20_000;

fn metered_config() -> VmConfig {
    let mut cfg = VmConfig::for_tests();
    // Realistic latency so op spans have nonzero width and land across
    // several windows (a zeroed model would pin every op into window 0).
    cfg.pool.latency = ido_nvm::LatencyModel::default();
    cfg.pool.metrics = MetricsConfig::with_window(WINDOW_NS);
    cfg
}

fn run_metered(scheme: Scheme) -> ServiceMetrics {
    let spec = ServiceSpec::with_range(256);
    let stats = run_workload(scheme, &spec, 2, 120, metered_config());
    stats.metrics.expect("metrics were enabled")
}

fn rendered_series(scheme: Scheme) -> String {
    let m = run_metered(scheme);
    let mut out = String::new();
    out.push_str(&format!(
        "# service metrics golden: service(range=256), 2T x 120 ops, scheme={}\n",
        scheme.name()
    ));
    out.push_str(ServiceMetrics::CSV_HEADER);
    out.push('\n');
    for row in m.csv_rows() {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/service_windows_ido.csv")
}

#[test]
fn window_series_matches_checked_in_golden() {
    let bless = std::env::var("IDO_BLESS").is_ok_and(|v| v == "1");
    let got = rendered_series(Scheme::Ido);
    let path = golden_path();
    if bless {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {} ({e}); regenerate with IDO_BLESS=1", path.display())
    });
    assert_eq!(
        got,
        want,
        "windowed series diverged from {} — if intentional, regenerate with IDO_BLESS=1",
        path.display()
    );
}

#[test]
fn window_totals_are_consistent() {
    let m = run_metered(Scheme::Ido);
    assert_eq!(m.total_ops(), 240, "every completed op lands in exactly one window");
    // The service mix is 80/20 get/put with no generic ops.
    let per_kind: [u64; 3] =
        [0, 1, 2].map(|k| m.windows.iter().map(|w| w.ops[k]).sum::<u64>());
    assert_eq!(per_kind[0], 0);
    assert_eq!(per_kind[1] + per_kind[2], 240);
    assert!(per_kind[1] > per_kind[2], "gets dominate the 80/20 mix");
    // Whole-run histograms are the merge of the window histograms.
    let windowed: u64 = m.windows.iter().map(|w| w.lat.count()).sum();
    let whole: u64 = m.per_kind.iter().map(|h| h.count()).sum();
    assert_eq!(windowed, whole);
}

#[test]
fn shard_fanout_is_jobs_invariant() {
    // One task per (shard, scheme) pair, fanned out exactly the way
    // service_bench does — then folded into one service-level timeline.
    let shards: Vec<(usize, Scheme)> = (0..2)
        .flat_map(|s| [(s, Scheme::Ido), (s, Scheme::Atlas)])
        .collect();
    let render = |jobs: usize| {
        let per_shard =
            ido_par::par_map_jobs(jobs, shards.clone(), |(_, scheme)| run_metered(scheme));
        let mut merged =
            ServiceMetrics { window_ns: WINDOW_NS, ..ServiceMetrics::default() };
        for m in &per_shard {
            merged.merge(m);
        }
        (merged.csv_rows().join("\n"), merged.prometheus_text("job=\"svc\""))
    };
    let serial = render(1);
    let parallel = render(4);
    assert_eq!(serial.0, parallel.0, "CSV series must not depend on worker count");
    assert_eq!(serial.1, parallel.1, "Prometheus snapshot must not depend on worker count");
}
