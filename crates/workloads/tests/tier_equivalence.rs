//! Cross-tier differential harness (ISSUE 6): the tier-2 block-compiled
//! engine must be **observationally identical** to the tier-1 interpreter.
//!
//! Every standard workload × every scheme runs twice — once per tier, same
//! config, same seed — and the harness asserts byte-identical final pool
//! images, identical pool-wide `StatsSnapshot` counters, identical step
//! counts and simulated clocks, and an identical encoded event trace
//! (every event, in order, with timestamps, plus the exact cost
//! attribution). Any fusion bug that changes a single persist event, a
//! clock by one nanosecond, or one byte of NVM fails here with the first
//! point of divergence.

use ido_compiler::{instrument_program, Scheme};
use ido_nvm::StatsSnapshot;
use ido_trace::{Trace, TraceConfig};
use ido_vm::{ExecTier, RunOutcome, SchedPolicy, Vm, VmConfig};
use ido_workloads::micro::TwinSpec;
use ido_workloads::{standard_specs, WorkloadSpec};

/// Everything observable about one run.
struct Observed {
    steps: u64,
    sim_ns: u64,
    image: Vec<u8>,
    stats: StatsSnapshot,
    trace: Trace,
}

fn observe(
    spec: &dyn WorkloadSpec,
    scheme: Scheme,
    tier: ExecTier,
    sched: SchedPolicy,
    threads: usize,
    ops: u64,
) -> Observed {
    let inst = instrument_program(spec.build_program(), scheme).expect("instruments cleanly");
    let mut cfg = VmConfig::for_tests();
    cfg.sched = sched;
    cfg.tier = tier;
    cfg.pool.trace = TraceConfig::on();
    let mut vm = Vm::new(inst, cfg);
    let base = spec.setup(&mut vm, threads, ops);
    for t in 0..threads {
        vm.spawn("worker", &spec.worker_args(&base, t, ops));
    }
    assert_eq!(vm.run(), RunOutcome::Completed, "{} under {scheme} ({tier:?})", spec.name());
    spec.verify(&vm, &base, threads as u64 * ops);
    let steps = vm.steps();
    let sim_ns = vm.max_clock_ns();
    let image = vm.pool().persistent_snapshot();
    let pool = vm.pool().clone();
    drop(vm); // fold per-thread stats and trace rings into the pool
    Observed {
        steps,
        sim_ns,
        image,
        stats: pool.global_stats(),
        trace: pool.take_trace().expect("tracing was enabled"),
    }
}

/// Asserts every observable of the two runs matches, reporting the first
/// point of divergence rather than dumping megabytes of context.
fn assert_identical(a: &Observed, b: &Observed, what: &str) {
    assert_eq!(a.steps, b.steps, "{what}: step counts diverge");
    assert_eq!(a.sim_ns, b.sim_ns, "{what}: simulated clocks diverge");
    assert_eq!(a.stats, b.stats, "{what}: StatsSnapshot counters diverge");

    assert_eq!(a.trace.pushed, b.trace.pushed, "{what}: trace event counts diverge");
    assert_eq!(a.trace.dropped, b.trace.dropped, "{what}: trace drop counts diverge");
    assert_eq!(a.trace.costs, b.trace.costs, "{what}: cost attribution diverges");
    if a.trace.events != b.trace.events {
        let i = a
            .trace
            .first_divergence(&b.trace)
            .unwrap_or_else(|| a.trace.events.len().min(b.trace.events.len()));
        panic!(
            "{what}: traces diverge at event {i}:\n  tier1: {:?}\n  tier2: {:?}",
            a.trace.events.get(i),
            b.trace.events.get(i)
        );
    }

    assert_eq!(a.image.len(), b.image.len(), "{what}: image sizes diverge");
    if a.image != b.image {
        let i = a.image.iter().zip(&b.image).position(|(x, y)| x != y).unwrap();
        panic!(
            "{what}: pool images diverge at byte {i:#x}: tier1={:#04x} tier2={:#04x}",
            a.image[i], b.image[i]
        );
    }
}

fn diff_tiers(spec: &dyn WorkloadSpec, scheme: Scheme, sched: SchedPolicy, threads: usize, ops: u64) {
    let what = format!("{} under {scheme} ({sched:?}, {threads}T)", spec.name());
    let t1 = observe(spec, scheme, ExecTier::Tier1, sched, threads, ops);
    let t2 = observe(spec, scheme, ExecTier::Tier2, sched, threads, ops);
    assert_identical(&t1, &t2, &what);
}

/// The headline gate: all standard workloads × all 7 schemes under the
/// discrete-event scheduler, both tiers, byte-identical.
#[test]
fn tier2_matches_tier1_on_all_standard_workloads_and_schemes() {
    for spec in standard_specs() {
        for scheme in Scheme::ALL {
            diff_tiers(spec.as_ref(), scheme, SchedPolicy::MinClock, 2, 6);
        }
    }
}

/// The Random scheduler exercises different tier-2 machinery: with several
/// runnable threads every fused step re-enters the scheduler (one-step
/// segments), and once only one thread remains the segment must burn the
/// exact RNG draws the per-step picks would have consumed.
#[test]
fn tier2_matches_tier1_under_the_random_scheduler() {
    for scheme in Scheme::ALL {
        diff_tiers(&TwinSpec, scheme, SchedPolicy::Random, 2, 4);
        diff_tiers(&TwinSpec, scheme, SchedPolicy::Random, 1, 6);
    }
}

/// Single-thread MinClock: no clock limit, so segments run to their deopt
/// points — the maximal-fusion configuration the benches measure.
#[test]
fn tier2_matches_tier1_single_threaded() {
    for spec in standard_specs() {
        for scheme in [Scheme::Origin, Scheme::Ido, Scheme::JustDo] {
            diff_tiers(spec.as_ref(), scheme, SchedPolicy::MinClock, 1, 8);
        }
    }
}

/// The deliberate mis-fusion flag must be caught by exactly this harness:
/// dropping one store's clwb tracking under iDO changes the persist-event
/// stream (and the crash-projected image), so the runs must NOT be
/// identical. Guards against the harness itself going blind.
#[test]
fn harness_catches_a_misfused_store_clwb_pair() {
    let spec = TwinSpec;
    let scheme = Scheme::Ido;
    let good = observe(&spec, scheme, ExecTier::Tier2, SchedPolicy::MinClock, 2, 4);

    // Re-run tier 2 with the sabotage flag: the store+clwb pair is broken.
    let inst = instrument_program(spec.build_program(), scheme).expect("instruments cleanly");
    let mut cfg = VmConfig::for_tests();
    cfg.sched = SchedPolicy::MinClock;
    cfg.tier = ExecTier::Tier2;
    cfg.tier2_bug_misfuse_store_clwb = true;
    cfg.pool.trace = TraceConfig::on();
    let mut vm = Vm::new(inst, cfg);
    let base = spec.setup(&mut vm, 2, 4);
    for t in 0..2 {
        vm.spawn("worker", &spec.worker_args(&base, t, 4));
    }
    assert_eq!(vm.run(), RunOutcome::Completed);
    let pool = vm.pool().clone();
    drop(vm);
    let sabotaged = pool.take_trace().expect("tracing was enabled");

    assert_ne!(
        good.trace.events, sabotaged.events,
        "mis-fusing a store+clwb pair must change the persist-event stream"
    );
}
