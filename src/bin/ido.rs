//! `ido` — the command-line driver for `.ido` scenario files.
//!
//! ```text
//! ido run <file.ido> [--jobs N] [--compare-builder]
//! ido verify <file.ido>
//! ido explain <file.ido> [--inject-skip-store-flush]
//! ido crashtest <file.ido>
//! ido trace <file.ido> [--limit N]
//! ido emit <file.ido>
//! ```
//!
//! Output is deterministic: `run` prints one stable JSON line per scheme
//! in the scenario's declaration order regardless of `--jobs`, so CI can
//! byte-compare runs at different parallelism. Parse errors render with
//! the offending line and a caret; verifier findings are renderable as
//! spanned witness paths via `explain`.

use std::process::ExitCode;

use ido_compiler::{instrument_program, Instrumented, Scheme};
use ido_crashtest::{explore_jobs, OracleConfig, DURABLE_SCHEMES};
use ido_lang::{parse_scenario, render_diagnostic, LangError, Listing, Scenario, ScenarioSpec};
use ido_nvm::StatsSnapshot;
use ido_trace::TraceConfig;
use ido_vm::{ExecTier, RunOutcome, SchedPolicy, Vm, VmConfig};
use ido_workloads::WorkloadSpec;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

fn usage() -> String {
    "usage: ido <run|verify|explain|crashtest|trace|emit> <file.ido> [flags]\n\
     \n\
     run        run the scenario under every listed scheme; one JSON line each\n\
     \x20          --jobs N            parallel runner threads (default: IDO_JOBS or 1)\n\
     \x20          --compare-builder   also run the native Rust-builder program and\n\
     \x20                              require byte-identical results\n\
     verify     instrument + statically verify each scheme; print findings\n\
     explain    like verify, but render each finding with its witness path\n\
     \x20          --inject-skip-store-flush   enable the iDO store-flush bug injection\n\
     crashtest  run the crash oracle (smoke budget) on the durable schemes\n\
     trace      run the first scheme with event tracing; dump events\n\
     \x20          --limit N           events to print (default 40)\n\
     emit       print the scenario's program in canonical textual form"
        .to_string()
}

fn run_cli(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or_else(usage)?.as_str();
    let path = args.get(1).ok_or_else(usage)?.clone();
    let source = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
    let scenario = match parse_scenario(&source) {
        Ok(s) => s,
        Err(e) => return Err(render_err(&e, &path, &source)),
    };
    let flags = &args[2..];
    match cmd {
        "run" => cmd_run(&scenario, flags),
        "verify" => cmd_verify(&scenario, false, flags),
        "explain" => cmd_verify(&scenario, true, flags),
        "crashtest" => cmd_crashtest(&scenario),
        "trace" => cmd_trace(&scenario, flags),
        "emit" => cmd_emit(&scenario),
        other => Err(format!("unknown subcommand `{other}`\n{}", usage())),
    }
}

fn render_err(e: &LangError, path: &str, source: &str) -> String {
    e.render(path, source)
}

/// Writes to stdout, treating a closed pipe (`ido emit ... | head`) as a
/// clean early exit rather than a panic.
fn emit_out(s: &str) -> bool {
    use std::io::Write as _;
    std::io::stdout().write_all(s.as_bytes()).is_ok()
}

fn flag_value(flags: &[String], name: &str) -> Result<Option<u64>, String> {
    match flags.iter().position(|f| f == name) {
        None => Ok(None),
        Some(i) => flags
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{name} needs an integer argument")),
    }
}

fn vm_config(scenario: &Scenario) -> VmConfig {
    let mut cfg = VmConfig::for_tests();
    cfg.seed = scenario.seed;
    cfg.tier = scenario.tier;
    cfg.sched = SchedPolicy::MinClock;
    cfg
}

/// Everything `run` observes about one scheme's execution.
struct Observed {
    steps: u64,
    sim_ns: u64,
    stats: StatsSnapshot,
    image_fnv: u64,
}

/// Runs `spec` under `scheme` and captures the observables (the same set
/// the cross-tier differential gates compare).
fn observe(spec: &dyn WorkloadSpec, scheme: Scheme, scenario: &Scenario) -> Observed {
    let inst = instrument_program(spec.build_program(), scheme).unwrap_or_else(|e| {
        panic!("{} does not instrument under {scheme}: {e:?}", spec.name())
    });
    let mut vm = Vm::new(inst, vm_config(scenario));
    let base = spec.setup(&mut vm, scenario.threads, scenario.ops);
    for t in 0..scenario.threads {
        vm.spawn("worker", &spec.worker_args(&base, t, scenario.ops));
    }
    assert_eq!(vm.run(), RunOutcome::Completed, "{} under {scheme}", spec.name());
    spec.verify(&vm, &base, scenario.threads as u64 * scenario.ops);
    let steps = vm.steps();
    let sim_ns = vm.max_clock_ns();
    let image = vm.pool().persistent_snapshot();
    let pool = vm.pool().clone();
    drop(vm);
    Observed { steps, sim_ns, stats: pool.global_stats(), image_fnv: fnv64(&image) }
}

/// FNV-1a over the persistent pool image: a compact, dependency-free
/// fingerprint for byte-compare gates.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn tier_name(t: ExecTier) -> &'static str {
    match t {
        ExecTier::Tier1 => "tier1",
        ExecTier::Tier2 => "tier2",
    }
}

fn json_line(scenario: &Scenario, spec: &dyn WorkloadSpec, scheme: Scheme, o: &Observed) -> String {
    format!(
        "{{\"scheme\":\"{}\",\"workload\":\"{}\",\"threads\":{},\"ops\":{},\"tier\":\"{}\",\"seed\":{},\"sim_ns\":{},\"steps\":{},\"loads\":{},\"stores\":{},\"nt_stores\":{},\"clwbs\":{},\"fences\":{},\"lines_persisted\":{},\"log_bytes\":{},\"image_fnv\":\"{:#018x}\"}}",
        scheme.name(),
        spec.name(),
        scenario.threads,
        scenario.ops,
        tier_name(scenario.tier),
        scenario.seed,
        o.sim_ns,
        o.steps,
        o.stats.loads,
        o.stats.stores,
        o.stats.nt_stores,
        o.stats.clwbs,
        o.stats.fences,
        o.stats.lines_persisted,
        o.stats.log_bytes,
        o.image_fnv,
    )
}

fn cmd_run(scenario: &Scenario, flags: &[String]) -> Result<ExitCode, String> {
    let jobs = match flag_value(flags, "--jobs")? {
        Some(n) => (n as usize).max(1),
        None => ido_par::jobs(),
    };
    let compare = flags.iter().any(|f| f == "--compare-builder");
    let spec = scenario.spec();

    // Fan the schemes out over the deterministic parallel map; results come
    // back in scheme order, so the printed output is independent of `jobs`.
    let schemes = scenario.schemes.clone();
    let results = ido_par::par_map_jobs(jobs, schemes.clone(), |scheme| {
        observe(&spec, scheme, scenario)
    });
    for (scheme, o) in schemes.iter().zip(&results) {
        println!("{}", json_line(scenario, &spec, *scheme, o));
    }

    if compare {
        let native = scenario.kind.native_spec(scenario.range);
        for (scheme, corpus) in schemes.iter().zip(&results) {
            let builder = observe(native.as_ref(), *scheme, scenario);
            let same = corpus.steps == builder.steps
                && corpus.sim_ns == builder.sim_ns
                && corpus.stats == builder.stats
                && corpus.image_fnv == builder.image_fnv;
            if !same {
                eprintln!(
                    "compare-builder MISMATCH under {}: corpus (steps={}, sim_ns={}, fnv={:#x}) vs builder (steps={}, sim_ns={}, fnv={:#x})",
                    scheme.name(),
                    corpus.steps,
                    corpus.sim_ns,
                    corpus.image_fnv,
                    builder.steps,
                    builder.sim_ns,
                    builder.image_fnv
                );
                return Ok(ExitCode::from(1));
            }
        }
        println!("compare-builder: {} scheme(s) byte-identical to the Rust builder", schemes.len());
    }
    Ok(ExitCode::SUCCESS)
}

/// Instruments the scenario's program for `scheme`.
fn instrument_for(spec: &ScenarioSpec, scheme: Scheme) -> Result<Instrumented, String> {
    instrument_program(spec.build_program(), scheme)
        .map_err(|e| format!("instrumentation failed under {}: {e:?}", scheme.name()))
}

fn cmd_verify(scenario: &Scenario, explain: bool, flags: &[String]) -> Result<ExitCode, String> {
    let mut cfg = vm_config(scenario);
    if flags.iter().any(|f| f == "--inject-skip-store-flush") {
        cfg.ido_bug_skip_store_flush = true;
    }
    let model = ido_verify::RuntimeModel::from_config(&cfg);
    let spec = scenario.spec();
    let mut findings = 0usize;
    for &scheme in &scenario.schemes {
        let inst = instrument_for(&spec, scheme)?;
        let diags = ido_verify::verify_instrumented(&inst, &model);
        if explain {
            let listing = Listing::new(&inst.program);
            for d in &diags {
                print!("{}", render_diagnostic(d, &listing));
            }
        } else {
            for d in &diags {
                println!("{d}");
            }
        }
        findings += diags.len();
    }
    if findings == 0 {
        println!(
            "verify: {} scheme(s) clean on workload `{}`",
            scenario.schemes.len(),
            spec.name()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!("verify: {findings} finding(s)");
        Ok(ExitCode::from(1))
    }
}

fn cmd_crashtest(scenario: &Scenario) -> Result<ExitCode, String> {
    let spec = scenario.spec();
    let mut cfg = OracleConfig::smoke();
    cfg.vm = vm_config(scenario);
    let mut failed = 0usize;
    let mut ran = 0usize;
    for &scheme in &scenario.schemes {
        if !DURABLE_SCHEMES.contains(&scheme) {
            println!("crashtest: skipping {} (no durability contract to check)", scheme.name());
            continue;
        }
        let ex = explore_jobs(ido_par::jobs(), &spec, scheme, &cfg);
        println!("{ex}");
        ran += 1;
        if let Some(c) = &ex.counterexample {
            eprint!("{}", c.replay_recipe());
            failed += 1;
        }
    }
    println!("crashtest: {ran} scheme(s) explored, {failed} counterexample(s)");
    Ok(if failed == 0 { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn cmd_trace(scenario: &Scenario, flags: &[String]) -> Result<ExitCode, String> {
    let limit = flag_value(flags, "--limit")?.unwrap_or(40) as usize;
    let scheme = *scenario.schemes.first().expect("scenario always has schemes");
    let spec = scenario.spec();
    let inst = instrument_for(&spec, scheme)?;
    let mut cfg = vm_config(scenario);
    cfg.pool.trace = TraceConfig::on();
    let mut vm = Vm::new(inst, cfg);
    let base = spec.setup(&mut vm, scenario.threads, scenario.ops);
    for t in 0..scenario.threads {
        vm.spawn("worker", &spec.worker_args(&base, t, scenario.ops));
    }
    assert_eq!(vm.run(), RunOutcome::Completed);
    let pool = vm.pool().clone();
    drop(vm);
    let trace = pool.take_trace().expect("tracing was enabled");
    println!(
        "trace: {} event(s) under {} ({} dropped)",
        trace.pushed,
        scheme.name(),
        trace.dropped
    );
    for ev in trace.events.iter().take(limit) {
        if !emit_out(&format!("{ev:?}\n")) {
            return Ok(ExitCode::SUCCESS);
        }
    }
    if trace.events.len() > limit {
        println!("... {} more (raise --limit)", trace.events.len() - limit);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_emit(scenario: &Scenario) -> Result<ExitCode, String> {
    let program = match &scenario.program {
        Some(p) => p.program.clone(),
        None => scenario.kind.native_spec(scenario.range).build_program(),
    };
    emit_out(&format!("{program}"));
    Ok(ExitCode::SUCCESS)
}
