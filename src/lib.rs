//! # ido-repro — iDO: Compiler-Directed Failure Atomicity for Nonvolatile Memory
//!
//! A full Rust reproduction of the MICRO 2018 paper by Liu, Izraelevitz,
//! Lee, Scott, Noh, and Jung. The workspace implements the paper's
//! contribution — **iDO logging**, failure atomicity for lock-delineated
//! FASEs via *recovery through idempotent-region resumption* — together
//! with every substrate it needs and every baseline it is evaluated
//! against. See `DESIGN.md` for the system inventory and the
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! This umbrella crate re-exports the workspace members and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`):
//!
//! * [`nvm`] — simulated hybrid NVM: volatile/persistent images,
//!   cache-line write-backs, persist fences, crash injection, latency
//!   model, persistent allocator, named roots.
//! * [`ir`] — the compiler IR with CFG, liveness, reaching definitions,
//!   and basicAA-style alias analysis.
//! * [`idem`] — idempotent region partitioning (antidependence cutting +
//!   register-WAR repair).
//! * [`compiler`] — FASE inference and per-scheme instrumentation.
//! * [`vm`] — the interpreter with deterministic scheduling, crash
//!   injection at any instruction, discrete-event timing, and per-scheme
//!   recovery.
//! * [`core`] — the native iDO runtime library (log, boundaries, indirect
//!   locks, resumable recovery).
//! * [`baselines`] — native JUSTDO, Atlas, Mnemosyne, NVML, and NVThreads
//!   runtimes behind the same `Session` trait.
//! * [`structures`] — persistent stack, queue, ordered list, and hash map.
//! * [`workloads`] — the paper's benchmark workloads and the throughput
//!   harness.
//! * [`crashtest`] — the systematic crash-point exploration oracle:
//!   persist-boundary enumeration, lost-line subset covers, deterministic
//!   replay, and minimal-counterexample shrinking.

pub use ido_baselines as baselines;
pub use ido_crashtest as crashtest;
pub use ido_compiler as compiler;
pub use ido_core as core;
pub use ido_idem as idem;
pub use ido_ir as ir;
pub use ido_nvm as nvm;
pub use ido_structures as structures;
pub use ido_vm as vm;
pub use ido_workloads as workloads;
