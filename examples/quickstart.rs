//! Quickstart: the native iDO runtime in five minutes.
//!
//! Builds a persistent stack under iDO logging, crashes the "machine" in
//! the middle of a push, and recovers via resumption — the end-to-end
//! story of the paper, through the library-directed API.
//!
//! Run with: `cargo run --example quickstart`

use ido_core::{IdoRuntime, Resumable, Session};
use ido_nvm::{PmemPool, PoolConfig};
use ido_structures::{PStack, OP_PUSH};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A simulated pool of byte-addressable NVM: ordinary stores land in a
    // volatile cache image and survive a crash only once written back and
    // fenced (or randomly evicted — configurable).
    let pool = PmemPool::new(PoolConfig::default());
    let rt = IdoRuntime::format(&pool)?;
    let mut session = rt.session(&pool)?;

    // A persistent Treiber stack protected by one lock.
    let mut stack = PStack::create(&mut session)?;
    let (header, lock_holder) = (stack.header(), stack.lock_holder());
    stack.push(&mut session, 1)?;
    stack.push(&mut session, 2)?;
    println!("before crash: {:?}", stack.values(session.handle()));

    // Now crash in the middle of a push: execute the operation's prefix up
    // to its second idempotent-region boundary (allocation done, fields
    // unwritten), then pull the plug.
    let value = 3;
    stack.begin_push_for_crash_demo(&mut session, value)?;
    drop(session);
    pool.crash(0xDEAD);
    println!("crash! volatile state gone; un-persisted lines dropped");

    // Recovery: inventory interrupted FASEs from the persistent iDO logs,
    // re-mint transient locks, and resume each operation from the region
    // boundary it had reached.
    let (rt, interrupted) = IdoRuntime::recover(&pool)?;
    println!("recovery found {} interrupted FASE(s)", interrupted.len());
    let mut stack = PStack::attach(header, lock_holder);
    for fase in &interrupted {
        assert_eq!(fase.op_token, OP_PUSH);
        println!(
            "  resuming op token={} from region seq={} (logged inputs: {:?})",
            fase.op_token,
            fase.region_seq,
            &fase.outputs[..3]
        );
        let mut rs = rt.recovery_session(&pool, fase)?;
        stack.resume(&mut rs, fase);
    }

    let mut h = pool.handle();
    println!("after recovery: {:?}", stack.values(&mut h));
    assert_eq!(stack.values(&mut h), vec![3, 2, 1], "push completed exactly once");
    println!("the interrupted push completed exactly once — recovery via resumption.");
    Ok(())
}
