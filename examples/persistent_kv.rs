//! A crash-safe key-value store built on the native library — the
//! "persistent heap objects instead of a local database" use case from the
//! paper's introduction.
//!
//! The store survives arbitrary crashes: every operation is a FASE under
//! iDO logging, and restart re-attaches to the same pool.
//!
//! Run with: `cargo run --example persistent_kv`

use ido_core::{IdoRuntime, Session};
use ido_nvm::alloc::NvAllocator;
use ido_nvm::root::RootTable;
use ido_nvm::{PmemPool, PoolConfig};
use ido_structures::PHashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pool = PmemPool::new(PoolConfig::default());

    // ---- first process lifetime: create the store, insert, crash ----
    {
        let rt = IdoRuntime::format(&pool)?;
        let mut s = rt.session(&pool)?;
        let mut kv = PHashMap::create(&mut s, 16)?;
        RootTable.set_root(s.handle(), "kv_directory", kv.directory())?;

        for (k, v) in [(1, 100), (2, 200), (3, 300), (42, 4200)] {
            kv.put(&mut s, k, v)?;
        }
        println!("process 1: inserted {} entries", kv.len(s.handle()));
        // Crash without any orderly shutdown.
    }
    pool.crash(0xBEEF);
    println!("-- crash --");

    // ---- second process lifetime: recover and continue ----
    {
        let (rt, interrupted) = IdoRuntime::recover(&pool)?;
        println!("process 2: recovery found {} interrupted FASEs", interrupted.len());
        let mut s = rt.session(&pool)?;
        let directory = RootTable
            .root(s.handle(), "kv_directory")
            .expect("directory root survives");
        let mut kv = PHashMap::attach(s.handle(), directory);

        println!("process 2: store has {} entries after crash", kv.len(s.handle()));
        assert_eq!(kv.get(&mut s, 42), Some(4200), "completed puts are durable");

        kv.put(&mut s, 5, 500)?;
        kv.remove(&mut s, 1);
        let total = kv.check_invariants(s.handle(), 1000);
        println!("process 2: {} entries, invariants hold", total);
        let _ = NvAllocator::attach();
    }
    println!("persistent heap objects, no serialization, crash-consistent.");
    Ok(())
}
