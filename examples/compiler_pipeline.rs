//! The compiler-directed pipeline, end to end:
//!
//! 1. build a lock-based program in the IR;
//! 2. partition it into idempotent regions (watch the antidependence cuts
//!    and the register-WAR repair land);
//! 3. instrument it for iDO;
//! 4. run it in the VM, crash at an arbitrary instruction, and recover via
//!    resumption.
//!
//! Run with: `cargo run --example compiler_pipeline`

use ido_compiler::{instrument_program, Scheme};
use ido_idem::partition;
use ido_ir::{BinOp, Operand, ProgramBuilder};
use ido_vm::{recover, RecoveryConfig, Vm, VmConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // fn transfer(lock, from, to): under `lock`, move 10 units between two
    // persistent accounts — the canonical failure-atomicity example.
    let mut pb = ProgramBuilder::new();
    let mut f = pb.new_function("transfer", 3);
    let lock = f.param(0);
    let from = f.param(1);
    let to = f.param(2);
    let a = f.new_reg();
    let a2 = f.new_reg();
    let b = f.new_reg();
    let b2 = f.new_reg();
    f.lock(lock);
    f.load(a, from, 0);
    f.bin(BinOp::Sub, a2, a, 10i64);
    f.store(from, 0, Operand::Reg(a2));
    f.load(b, to, 0);
    f.bin(BinOp::Add, b2, b, 10i64);
    f.store(to, 0, Operand::Reg(b2));
    f.unlock(lock);
    f.ret(None);
    let id = f.finish()?;
    let mut program = pb.finish();

    // Phase 2: idempotent region formation (on a clone, for display).
    let analysis = partition(program.function_mut(id));
    println!("== idempotent regions ==");
    for r in analysis.regions() {
        println!(
            "  region {:?}: entry {:?}, {} instrs, {} stores, inputs {:?}",
            r.id,
            r.entry,
            r.members.len(),
            r.num_stores(),
            r.input_regs
        );
    }

    // Phases 1+3: FASE inference + iDO instrumentation.
    let instrumented = instrument_program(program, Scheme::Ido)?;
    println!("\n== instrumented ==\n{}", instrumented.program.function(id));

    // Execute, crash mid-FASE, recover.
    let cfg = VmConfig::default();
    let mut vm = Vm::new(instrumented.clone(), cfg.clone());
    let (lock_holder, accounts) = vm.setup(|h, alloc, _| {
        let l = alloc.alloc(h, 8).expect("lock holder");
        let acct = alloc.alloc(h, 64).expect("accounts");
        h.write_u64(acct, 100); // from
        h.write_u64(acct + 8, 0); // to
        h.persist(acct, 16);
        (l, acct)
    });
    vm.spawn("transfer", &[lock_holder as u64, accounts as u64, accounts as u64 + 8]);

    let crash_step = 14; // mid-FASE, between the two account updates
    vm.run_steps(crash_step);
    let pool = vm.crash(7);
    println!("crashed after {crash_step} instructions");
    {
        let mut h = pool.handle();
        println!(
            "post-crash (pre-recovery): from={} to={} — possibly mid-transfer",
            h.read_u64(accounts),
            h.read_u64(accounts + 8)
        );
    }

    let report = recover(pool.clone(), instrumented, cfg, RecoveryConfig::for_tests());
    let mut h = pool.handle();
    let (from_v, to_v) = (h.read_u64(accounts), h.read_u64(accounts + 8));
    println!(
        "after recovery ({} FASE resumed): from={from_v} to={to_v}",
        report.resumed
    );
    assert_eq!(from_v + to_v, 100, "money is conserved");
    assert!(to_v == 0 || to_v == 10, "transfer is all-or-nothing");
    println!("the interrupted FASE ran forward to completion: atomic transfer.");
    Ok(())
}
