//! Scheme shootout: the same workload under all seven runtimes.
//!
//! Runs the hash-map microbenchmark through the full pipeline for every
//! scheme, then crashes each mid-run and recovers, printing a comparison
//! of throughput, persistence traffic, and recovery behavior — a miniature
//! of the paper's whole evaluation in one binary.
//!
//! Run with: `cargo run --release --example scheme_shootout`

use ido_compiler::{instrument_program, Scheme};
use ido_nvm::PoolConfig;
use ido_vm::{recover, RecoveryConfig, SchedPolicy, Vm, VmConfig};
use ido_workloads::micro::MapSpec;
use ido_workloads::{run_workload, WorkloadSpec};

fn main() {
    let spec = MapSpec { buckets: 64, key_range: 1024 };
    let threads = 8;
    let ops = 200;
    let cfg = VmConfig {
        pool: PoolConfig { size: 64 << 20, ..PoolConfig::default() },
        log_entries: 1 << 14,
        ..VmConfig::default()
    };

    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "scheme", "Mops/s", "fences/op", "lines/op", "resumed", "rolled-back"
    );
    for scheme in Scheme::ALL {
        // Throughput leg (runs to completion, checks invariants).
        let stats = run_workload(scheme, &spec, threads, ops, cfg.clone());
        let per_op = |x: u64| x as f64 / stats.total_ops as f64;

        // Crash-recovery leg: crash mid-run, recover, count actions.
        let instrumented =
            instrument_program(spec.build_program(), scheme).expect("instrumentation");
        let mut vm = Vm::new(instrumented.clone(), VmConfig { sched: SchedPolicy::Random, ..cfg.clone() });
        let base = spec.setup(&mut vm, threads, ops);
        for t in 0..threads {
            vm.spawn("worker", &spec.worker_args(&base, t, ops));
        }
        vm.run_steps(threads as u64 * ops * 40); // deep into the run
        let pool = vm.crash(99);
        let report = recover(pool, instrumented, cfg.clone(), RecoveryConfig::for_tests());

        println!(
            "{:>10} {:>10.3} {:>10.2} {:>10.2} {:>10} {:>12}",
            scheme.name(),
            stats.mops(),
            per_op(stats.mem_stats.fences),
            per_op(stats.mem_stats.lines_persisted),
            report.resumed,
            report.rolled_back,
        );
    }
    println!(
        "\nResumption schemes (iDO, JUSTDO) finish interrupted FASEs forward;\n\
         UNDO/REDO schemes roll back or replay. Origin does neither — and is\n\
         the only one whose post-crash state is unprotected."
    );
}
